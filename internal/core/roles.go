package core

import (
	"fmt"
	"sort"
)

// Role names the structural position a callback fills in a graph prototype
// — Leaf, Inner, Root, … — replacing positional registration by index into
// Callbacks(). Roles make registration self-documenting and robust against
// reordering of a graph's callback-id list.
type Role string

// Roles shared by the built-in graph prototypes. Graphs are free to define
// additional roles; these constants only fix the spelling of common ones.
const (
	RoleLeaf    Role = "leaf"    // bottom of a reduction/merge tree
	RoleInner   Role = "inner"   // interior tree or exchange stage
	RoleRoot    Role = "root"    // final task of a reduction/exchange
	RoleSource  Role = "source"  // origin of a broadcast
	RoleRelay   Role = "relay"   // pass-through stage
	RoleSink    Role = "sink"    // terminal consumer of a broadcast
	RoleFinal   Role = "final"   // k-way merge corrector stage
	RoleExtract Role = "extract" // neighborhood halo extraction
	RoleProcess Role = "process" // neighborhood stencil body
)

// RoledGraph is a task graph whose callback ids carry named roles. All
// built-in prototypes (Reduction, Broadcast, BinarySwap, KWayMerge,
// Neighbor stencils, Gather) implement it.
type RoledGraph interface {
	TaskGraph
	// CallbackRoles maps every role the graph uses to its callback id. The
	// returned map covers exactly the graph's Callbacks().
	CallbackRoles() map[Role]CallbackId
}

// RegisterCallbacks registers one callback per named role on the
// controller. Every role of the graph must be implemented and every
// provided role must exist in the graph — partial or surplus maps are
// rejected with an error listing the offending roles in sorted order.
//
// This is the role-based replacement for the positional idiom
// `cids := g.Callbacks(); c.RegisterCallback(cids[0], f)`.
func RegisterCallbacks(c CallbackRegistrar, g TaskGraph, impls map[Role]Callback) error {
	rg, ok := g.(RoledGraph)
	if !ok {
		return fmt.Errorf("core: graph %T does not name callback roles", g)
	}
	roles := rg.CallbackRoles()

	var missing, unknown []string
	for role := range roles {
		if _, ok := impls[role]; !ok {
			missing = append(missing, string(role))
		}
	}
	for role := range impls {
		if _, ok := roles[role]; !ok {
			unknown = append(unknown, string(role))
		}
	}
	sort.Strings(missing)
	sort.Strings(unknown)
	if len(missing) > 0 {
		return fmt.Errorf("core: no callback for role(s) %v", missing)
	}
	if len(unknown) > 0 {
		return fmt.Errorf("core: graph has no role(s) %v", unknown)
	}

	names := make([]string, 0, len(roles))
	for role := range roles {
		names = append(names, string(role))
	}
	sort.Strings(names)
	for _, name := range names {
		role := Role(name)
		if err := c.RegisterCallback(roles[role], impls[role]); err != nil {
			return fmt.Errorf("core: role %q: %w", role, err)
		}
	}
	return nil
}
