package core

import "testing"

// TestRebalanceShardsMatchesReassignWithoutJoiners: with every member a
// shard of the base map, RebalanceShards must be exactly ReassignShards.
func TestRebalanceShardsMatchesReassignWithoutJoiners(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(4, g)
	for _, members := range [][]ShardId{
		{0, 1, 2, 3}, {0, 1, 3}, {2}, {0, 2},
	} {
		got, err := RebalanceShards(g, m, members)
		if err != nil {
			t.Fatalf("members %v: %v", members, err)
		}
		if got.ShardCount() != len(members) {
			t.Fatalf("members %v: shard count = %d", members, got.ShardCount())
		}
		logical := map[ShardId]ShardId{}
		for i, s := range members {
			logical[s] = ShardId(i)
		}
		for _, id := range g.TaskIds() {
			if want, ok := logical[m.Shard(id)]; ok && got.Shard(id) != want {
				t.Errorf("members %v: survivor task %d on %d, want %d",
					members, id, got.Shard(id), want)
			}
			if l := got.Shard(id); l < 0 || l >= ShardId(len(members)) {
				t.Fatalf("members %v: task %d out of range shard %d", members, id, l)
			}
		}
	}
}

// TestRebalanceShardsJoin grows 2 → 4: survivors keep a fair share, the two
// joiners end up within one task of every other rank, and the result is
// deterministic.
func TestRebalanceShardsJoin(t *testing.T) {
	g := reassignGraph() // 8 tasks
	m := NewGraphMap(2, g)
	members := []ShardId{0, 1, 2, 3} // 2 survivors + joiners 2,3
	next, err := RebalanceShards(g, m, members)
	if err != nil {
		t.Fatal(err)
	}
	if next.ShardCount() != 4 {
		t.Fatalf("shard count = %d", next.ShardCount())
	}
	counts := map[ShardId]int{}
	for _, id := range g.TaskIds() {
		l := next.Shard(id)
		if l < 0 || l > 3 {
			t.Fatalf("task %d on shard %d", id, l)
		}
		counts[l]++
		// A task that stayed on a survivor must be on its original shard.
		if l <= 1 && m.Shard(id) != l {
			t.Errorf("task %d changed survivor owner %d -> %d", id, m.Shard(id), l)
		}
	}
	for l := ShardId(0); l < 4; l++ {
		if counts[l] != 2 {
			t.Errorf("rank %d owns %d tasks, want 2 (counts %v)", l, counts[l], counts)
		}
	}
	again, err := RebalanceShards(g, m, members)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.TaskIds() {
		if next.Shard(id) != again.Shard(id) {
			t.Fatalf("task %d nondeterministic: %d vs %d", id, next.Shard(id), again.Shard(id))
		}
	}
}

// TestRebalanceShardsJoinAndDrain interleaves a drain with a join: shard 1
// of a 3-shard map leaves while member 3 joins. Orphans and balancing both
// land on valid ranks, survivors never move, and nobody is idle.
func TestRebalanceShardsJoinAndDrain(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(3, g)
	members := []ShardId{0, 2, 3} // drain 1, join 3
	next, err := RebalanceShards(g, m, members)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ShardId]int{}
	for _, id := range g.TaskIds() {
		l := next.Shard(id)
		counts[l]++
		// Survivor tasks may migrate to the joiner (logical 2, balancing)
		// but never to the other survivor.
		switch m.Shard(id) {
		case 0:
			if l == 1 {
				t.Errorf("task %d moved survivor->survivor (0 -> 2)", id)
			}
		case 2:
			if l == 0 {
				t.Errorf("task %d moved survivor->survivor (2 -> 0)", id)
			}
		}
	}
	total := 0
	for l := ShardId(0); l < 3; l++ {
		if counts[l] == 0 {
			t.Errorf("rank %d idle after rebalance: %v", l, counts)
		}
		total += counts[l]
	}
	if total != len(g.TaskIds()) {
		t.Fatalf("tasks lost: %v", counts)
	}
	if counts[2] == 0 {
		t.Error("joiner received no work")
	}
}

// TestRebalanceShardsSuccessiveEpochs chains membership epochs the way the
// elastic coordinator does: each epoch's map feeds the next with member
// identities relabelled to the previous epoch's logical ranks.
func TestRebalanceShardsSuccessiveEpochs(t *testing.T) {
	g := reassignGraph()
	m0 := NewGraphMap(2, g)
	m1, err := RebalanceShards(g, m0, []ShardId{0, 1, 2, 3}) // 2 -> 4 join
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RebalanceShards(g, m1, []ShardId{0, 1, 3}) // drain logical 2
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ShardId]int{}
	for _, id := range g.TaskIds() {
		l := m2.Shard(id)
		if l < 0 || l > 2 {
			t.Fatalf("task %d on shard %d of 3", id, l)
		}
		counts[l]++
		if prev := m1.Shard(id); prev != 2 {
			want := prev
			if prev == 3 {
				want = 2
			}
			if l != want {
				t.Errorf("task %d moved from surviving rank %d to %d", id, prev, l)
			}
		}
	}
	if counts[0]+counts[1]+counts[2] != len(g.TaskIds()) {
		t.Fatalf("tasks lost: %v", counts)
	}
}

func TestRebalanceShardsRejectsBadMembers(t *testing.T) {
	g := reassignGraph()
	m := NewGraphMap(4, g)
	if _, err := RebalanceShards(g, m, nil); err == nil {
		t.Error("empty member set accepted")
	}
	if _, err := RebalanceShards(g, m, []ShardId{0, 4, 4}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := RebalanceShards(g, m, []ShardId{0, -1}); err == nil {
		t.Error("negative member accepted")
	}
}

// TestLedgerAdopt moves a recorded task between ledgers: the adoptee owns a
// deep copy, the donor is untouched, and adopting through a backed ledger
// journals the record.
func TestLedgerAdopt(t *testing.T) {
	donor := NewLedger()
	donor.Record(7, [][]byte{{1, 2, 3}, {4}})

	heir := NewLedger()
	if !heir.Adopt(donor, 7) {
		t.Fatal("Adopt of recorded task failed")
	}
	if heir.Adopt(donor, 8) {
		t.Error("Adopt of unrecorded task succeeded")
	}
	if heir.Adopt(heir, 7) {
		t.Error("self-Adopt succeeded")
	}
	outs, ok := heir.Outputs(7)
	if !ok || len(outs) != 2 || outs[0][0] != 1 || outs[1][0] != 4 {
		t.Fatalf("adopted outputs wrong: %v ok=%v", outs, ok)
	}
	// Deep copy: mutating the heir's buffers must not reach the donor.
	outs[0][0] = 99
	dOuts, _ := donor.Outputs(7)
	if dOuts[0][0] != 1 {
		t.Error("Adopt shared buffers with donor")
	}

	st := newFakeStore()
	backed := NewLedgerBacked(st, 4)
	if !backed.Adopt(donor, 7) {
		t.Fatal("Adopt into backed ledger failed")
	}
	if _, ok, _ := st.Get(7); !ok {
		t.Error("Adopt into backed ledger did not journal the record")
	}
}
