package core

import (
	"testing"
)

// chainGraph builds a small explicit graph: 0 -> 1 -> 2 with an extra
// fan-out edge 0 -> 2 on a second output slot.
func chainGraph() *ExplicitGraph {
	return NewExplicitGraph([]Task{
		{Id: 0, Callback: 1, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}, {2}}},
		{Id: 1, Callback: 2, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{2}}},
		{Id: 2, Callback: 3, Incoming: []TaskId{0, 1}, Outgoing: [][]TaskId{{}}},
	})
}

func TestFingerprintDeterministic(t *testing.T) {
	a := GraphFingerprint(chainGraph(), nil)
	b := GraphFingerprint(chainGraph(), nil)
	if a != b {
		t.Errorf("same graph fingerprints differ: %s vs %s", a, b)
	}
	if a.IsZero() {
		t.Error("fingerprint is zero")
	}
	if len(a.String()) != 64 {
		t.Errorf("hex form = %q", a.String())
	}
}

func TestFingerprintIndependentOfRepresentation(t *testing.T) {
	g := chainGraph()
	m := Materialize(g)
	if a, b := GraphFingerprint(g, nil), GraphFingerprint(m, nil); a != b {
		t.Errorf("materialized copy fingerprints differently: %s vs %s", a, b)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := GraphFingerprint(chainGraph(), nil)

	// Different callback id on one task.
	cb := NewExplicitGraph([]Task{
		{Id: 0, Callback: 1, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}, {2}}},
		{Id: 1, Callback: 7, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{2}}},
		{Id: 2, Callback: 3, Incoming: []TaskId{0, 1}, Outgoing: [][]TaskId{{}}},
	})
	if GraphFingerprint(cb, nil) == base {
		t.Error("callback change not reflected in fingerprint")
	}

	// Same edges, different fan-out slot split: {1,2} on one slot instead of
	// {1},{2} on two.
	slots := NewExplicitGraph([]Task{
		{Id: 0, Callback: 1, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1, 2}}},
		{Id: 1, Callback: 2, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{2}}},
		{Id: 2, Callback: 3, Incoming: []TaskId{0, 1}, Outgoing: [][]TaskId{{}}},
	})
	if GraphFingerprint(slots, nil) == base {
		t.Error("fan-out slot split not reflected in fingerprint")
	}

	// Extra task.
	extra := NewExplicitGraph([]Task{
		{Id: 0, Callback: 1, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}, {2}}},
		{Id: 1, Callback: 2, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{2}}},
		{Id: 2, Callback: 3, Incoming: []TaskId{0, 1}, Outgoing: [][]TaskId{{3}}},
		{Id: 3, Callback: 3, Incoming: []TaskId{2}, Outgoing: [][]TaskId{{}}},
	})
	if GraphFingerprint(extra, nil) == base {
		t.Error("extra task not reflected in fingerprint")
	}
}

func TestFingerprintRegisteredCallbacks(t *testing.T) {
	g := chainGraph()
	bare := GraphFingerprint(g, nil)
	withReg := GraphFingerprint(g, []CallbackId{1, 2, 3})
	if bare == withReg {
		t.Error("registered callback set not reflected in fingerprint")
	}
	// Order of the registered slice must not matter.
	if withReg != GraphFingerprint(g, []CallbackId{3, 1, 2}) {
		t.Error("fingerprint depends on registration order")
	}

	reg := NewRegistry()
	noop := func(in []Payload, id TaskId) ([]Payload, error) { return nil, nil }
	reg.Register(3, noop)
	reg.Register(1, noop)
	reg.Register(2, noop)
	if withReg != GraphFingerprint(g, reg.Ids()) {
		t.Error("Registry.Ids() does not reproduce the explicit callback set")
	}
}
