package core

import (
	"fmt"
	"sort"
)

// Iterative dataflow: Iterate compiles a loop over a body graph into an
// ordinary static DAG, extending the paper's composition-prefix scheme by
// one more level. A composed task id already reserves its top 16 bits for
// the sub-graph prefix; an unrolled iterative graph additionally places the
// iteration index in bits [IterShift, IterShift+8), so every task id names
// (prefix, iteration, body task) unambiguously — fingerprints, lineage
// records and journal replay all stay per-iteration precise without any new
// runtime state.
//
// Each iteration k ends in one synthetic decision task D_k that receives
// the iteration's gated sink payloads, runs the user's convergence
// predicate, and routes the loop state through a conditional fan-out
// (Task.Cond): branch 0 ("continue") feeds iteration k+1's gated inputs,
// branch 1 ("done") feeds the final sink slots. The losing branch carries
// dead tokens, so after convergence every remaining iteration cancels
// without executing and the done payloads are the only live sinks. The
// predicate therefore runs as a plain dataflow task — distributed runs need
// no consensus round, because the decision propagates to every rank as
// ordinary (live or dead) messages, and a new iteration's frontier becomes
// ready only after the previous iteration's decision task has run.

const (
	// IterShift is the bit position of the iteration index within an
	// unrolled task id: IterId(k, id) = k<<IterShift | id. Body task ids
	// must stay below 2^IterShift.
	IterShift = 40
	// iterSynthetic is the reserved iteration prefix of the synthetic
	// per-iteration decision tasks, which caps usable iterations at 255.
	iterSynthetic = 0xFF
	// MaxIterationsBound is the largest admissible MaxIterations value.
	MaxIterationsBound = iterSynthetic - 1
	// DefaultMaxIterations bounds an Iterate without an explicit
	// MaxIterations option.
	DefaultMaxIterations = 8
	// DecisionCallback is the reserved callback id of the synthetic
	// decision tasks. IterativeGraph.RegisterDecision installs the
	// implementation; body graphs must not use this id.
	DecisionCallback CallbackId = 0xFFFFFFF0
)

// IterId maps a body-local task id into iteration k of the unrolled id
// space.
func IterId(iter int, id TaskId) TaskId {
	return TaskId(uint64(iter)<<IterShift | uint64(id))
}

// IterOf extracts the iteration index of an unrolled task id; decision
// tasks report iterSynthetic (see IsDecision).
func IterOf(id TaskId) int { return int(id >> IterShift & iterSynthetic) }

// BodyId strips the iteration index, recovering the body-local task id.
func BodyId(id TaskId) TaskId { return id & (1<<IterShift - 1) }

// DecisionId returns the id of iteration k's synthetic decision task.
func DecisionId(iter int) TaskId {
	return TaskId(uint64(iterSynthetic)<<IterShift | uint64(iter))
}

// IsDecision reports whether the unrolled task id names a synthetic
// decision task.
func IsDecision(id TaskId) bool { return id>>IterShift&iterSynthetic == iterSynthetic }

// ConvergencePredicate decides, after each iteration, whether the loop has
// converged. iter is the just-finished iteration (0-based) and sinks maps
// each gated sink's body-local task id to its payloads in slot order — the
// same shape Controller.Run returns for the body graph. The predicate runs
// inside the iteration's decision task, so it must be deterministic and
// must not retain or mutate the payloads. Returning true stops the loop:
// the gated payloads become the final sinks and every later iteration is
// cancelled via dead tokens.
type ConvergencePredicate func(iter int, sinks map[TaskId][]Payload) (bool, error)

// IterBinding names one feedback edge of an iterative graph: the FromSlot-th
// output slot of body task From (which must be a sink slot) feeds the
// ToSlot-th input slot of body task To (which must be an ExternalInput
// slot) in the next iteration.
type IterBinding struct {
	From     TaskId
	FromSlot int
	To       TaskId
	ToSlot   int
}

// IterOption configures Iterate.
type IterOption interface{ applyIter(*iterConfig) }

type iterConfig struct {
	maxIter int
	gates   []IterBinding
	carries []IterBinding
}

type iterOptionFunc func(*iterConfig)

func (f iterOptionFunc) applyIter(c *iterConfig) { f(c) }

// MaxIterations bounds the loop at n iterations; the n-th decision task is
// unconditional, emitting whatever state the loop reached even if the
// predicate never held.
func MaxIterations(n int) IterOption {
	return iterOptionFunc(func(c *iterConfig) { c.maxIter = n })
}

// Gate declares a predicate-visible feedback edge: the sink payload is
// routed through the iteration's decision task, shows up in the predicate's
// sinks map, feeds the target input of the next iteration on the continue
// branch, and becomes a final sink on the done branch. Several Gate calls
// may share one source (fan-out to several targets). Every Iterate needs at
// least one gate — it is what the loop converges on.
func Gate(from TaskId, fromSlot int, to TaskId, toSlot int) IterOption {
	return iterOptionFunc(func(c *iterConfig) {
		c.gates = append(c.gates, IterBinding{From: from, FromSlot: fromSlot, To: to, ToSlot: toSlot})
	})
}

// Carry declares a pass-through feedback edge for loop-invariant state
// (tiles, meshes, configuration): the sink payload feeds the target input
// of the next iteration directly, skipping the decision task and the
// predicate. After convergence the cascade of dead tokens kills carried
// edges along with everything else.
func Carry(from TaskId, fromSlot int, to TaskId, toSlot int) IterOption {
	return iterOptionFunc(func(c *iterConfig) {
		c.carries = append(c.carries, IterBinding{From: from, FromSlot: fromSlot, To: to, ToSlot: toSlot})
	})
}

// iterSource groups the bindings sharing one (From, FromSlot) sink slot.
type iterSource struct {
	From     TaskId
	FromSlot int
	Targets  []IterBinding // sorted by (To, ToSlot)
}

// IterativeGraph is the statically unrolled form of a loop built by
// Iterate: a plain TaskGraph (every controller, transport tier and journal
// runs it unchanged) that additionally knows its iteration structure, so it
// can register the synthetic decision callback and decode the final sinks.
type IterativeGraph struct {
	*ExplicitGraph
	body    TaskGraph
	pred    ConvergencePredicate
	maxIter int
	gates   []iterSource
	carries []iterSource
	// lastGateIdx maps gate j to its input index on the final decision
	// task, whose Incoming interleaves gate and carry sources in
	// per-producer emission order.
	lastGateIdx []int
}

// groupSources sorts bindings into per-source groups (unique (From,
// FromSlot), ascending), each with its targets sorted by (To, ToSlot).
func groupSources(bindings []IterBinding) []iterSource {
	byKey := make(map[[2]uint64][]IterBinding)
	for _, b := range bindings {
		k := [2]uint64{uint64(b.From), uint64(b.FromSlot)}
		byKey[k] = append(byKey[k], b)
	}
	keys := make([][2]uint64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]iterSource, 0, len(keys))
	for _, k := range keys {
		ts := byKey[k]
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].To != ts[j].To {
				return ts[i].To < ts[j].To
			}
			return ts[i].ToSlot < ts[j].ToSlot
		})
		out = append(out, iterSource{From: TaskId(k[0]), FromSlot: int(k[1]), Targets: ts})
	}
	return out
}

// Iterate unrolls body into an iterative graph bounded by MaxIterations.
// The feedback wiring (Gate/Carry options) must cover every ExternalInput
// slot of the body exactly once — iteration 0 keeps those slots external,
// so the loop is seeded by ordinary initial inputs — and every binding
// source must be a sink slot of the body. At least one Gate is required.
func Iterate(body TaskGraph, pred ConvergencePredicate, opts ...IterOption) (*IterativeGraph, error) {
	if body == nil {
		return nil, fmt.Errorf("core: Iterate over a nil body graph")
	}
	if pred == nil {
		return nil, fmt.Errorf("core: Iterate needs a convergence predicate")
	}
	if err := Validate(body); err != nil {
		return nil, fmt.Errorf("core: Iterate body invalid: %w", err)
	}
	cfg := iterConfig{maxIter: DefaultMaxIterations}
	for _, o := range opts {
		o.applyIter(&cfg)
	}
	if cfg.maxIter < 1 || cfg.maxIter > MaxIterationsBound {
		return nil, fmt.Errorf("core: MaxIterations %d out of range [1,%d]", cfg.maxIter, MaxIterationsBound)
	}
	if len(cfg.gates) == 0 {
		return nil, fmt.Errorf("core: Iterate needs at least one Gate binding")
	}
	for _, cb := range body.Callbacks() {
		if cb == DecisionCallback {
			return nil, fmt.Errorf("core: body graph uses the reserved decision callback id %d", DecisionCallback)
		}
	}

	// Index the body and check the binding endpoints.
	bodyTasks := make(map[TaskId]Task, body.Size())
	for _, id := range body.TaskIds() {
		if uint64(id) >= 1<<IterShift {
			return nil, fmt.Errorf("core: body task id %d exceeds the 2^%d iteration-prefix capacity", id, IterShift)
		}
		t, _ := body.Task(id)
		bodyTasks[id] = t
	}
	kind := make(map[[2]uint64]string) // source slot -> "gate" | "carry"
	checkSource := func(b IterBinding, k string) error {
		t, ok := bodyTasks[b.From]
		if !ok {
			return fmt.Errorf("core: %s source names unknown body task %d", k, b.From)
		}
		if b.FromSlot < 0 || b.FromSlot >= len(t.Outgoing) {
			return fmt.Errorf("core: %s source task %d has no output slot %d", k, b.From, b.FromSlot)
		}
		if len(t.Outgoing[b.FromSlot]) != 0 {
			return fmt.Errorf("core: %s source task %d slot %d is not a sink slot", k, b.From, b.FromSlot)
		}
		key := [2]uint64{uint64(b.From), uint64(b.FromSlot)}
		if prev, dup := kind[key]; dup && prev != k {
			return fmt.Errorf("core: task %d slot %d bound as both gate and carry", b.From, b.FromSlot)
		}
		kind[key] = k
		return nil
	}
	covered := make(map[[2]uint64]bool) // (to, toSlot) -> bound
	checkTarget := func(b IterBinding, k string) error {
		t, ok := bodyTasks[b.To]
		if !ok {
			return fmt.Errorf("core: %s target names unknown body task %d", k, b.To)
		}
		if b.ToSlot < 0 || b.ToSlot >= len(t.Incoming) {
			return fmt.Errorf("core: %s target task %d has no input slot %d", k, b.To, b.ToSlot)
		}
		if t.Incoming[b.ToSlot] != ExternalInput {
			return fmt.Errorf("core: %s target task %d slot %d is not an ExternalInput slot", k, b.To, b.ToSlot)
		}
		key := [2]uint64{uint64(b.To), uint64(b.ToSlot)}
		if covered[key] {
			return fmt.Errorf("core: task %d input slot %d bound twice", b.To, b.ToSlot)
		}
		covered[key] = true
		return nil
	}
	for _, b := range cfg.gates {
		if err := checkSource(b, "gate"); err != nil {
			return nil, err
		}
		if err := checkTarget(b, "gate"); err != nil {
			return nil, err
		}
	}
	for _, b := range cfg.carries {
		if err := checkSource(b, "carry"); err != nil {
			return nil, err
		}
		if err := checkTarget(b, "carry"); err != nil {
			return nil, err
		}
	}
	for id, t := range bodyTasks {
		for slot, p := range t.Incoming {
			if p == ExternalInput && !covered[[2]uint64{uint64(id), uint64(slot)}] {
				return nil, fmt.Errorf("core: body task %d input slot %d is external but no Gate/Carry feeds it", id, slot)
			}
		}
	}

	gates := groupSources(cfg.gates)
	carries := groupSources(cfg.carries)

	// Producer-matching delivery fills a consumer's input slots for one
	// producer in arrival order. All gated inputs of a target task arrive
	// from the same decision task in gate order, and all carried inputs
	// from one source task arrive in ascending source-slot order — so the
	// target input slots must ascend the same way, or the feedback payloads
	// would land in the wrong slots.
	lastGate := make(map[TaskId]int)
	for _, s := range gates {
		for _, b := range s.Targets {
			if prev, seen := lastGate[b.To]; seen && b.ToSlot <= prev {
				return nil, fmt.Errorf("core: gated inputs of task %d must be wired in ascending slot order (slot %d after %d)", b.To, b.ToSlot, prev)
			}
			lastGate[b.To] = b.ToSlot
		}
	}
	lastCarry := make(map[[2]uint64]int)
	for _, s := range carries {
		for _, b := range s.Targets {
			key := [2]uint64{uint64(s.From), uint64(b.To)}
			if prev, seen := lastCarry[key]; seen && b.ToSlot <= prev {
				return nil, fmt.Errorf("core: inputs of task %d carried from task %d must be wired in ascending slot order (slot %d after %d)", b.To, s.From, b.ToSlot, prev)
			}
			lastCarry[key] = b.ToSlot
		}
	}
	gateOf := make(map[[2]uint64]int, len(gates)) // source slot -> gate index
	for j, s := range gates {
		gateOf[[2]uint64{uint64(s.From), uint64(s.FromSlot)}] = j
	}
	carryOf := make(map[[2]uint64]*iterSource, len(carries))
	for i := range carries {
		s := &carries[i]
		carryOf[[2]uint64{uint64(s.From), uint64(s.FromSlot)}] = s
	}
	// gatedBy/carriedBy: target input slot -> binding source, for rewiring
	// iteration k's external inputs to iteration k-1's producers.
	gatedBy := make(map[[2]uint64]bool)
	for _, b := range cfg.gates {
		gatedBy[[2]uint64{uint64(b.To), uint64(b.ToSlot)}] = true
	}
	carrySrc := make(map[[2]uint64]TaskId)
	for _, b := range cfg.carries {
		carrySrc[[2]uint64{uint64(b.To), uint64(b.ToSlot)}] = b.From
	}

	// Unroll: maxIter body copies plus one decision task per iteration.
	S := len(gates)
	var tasks []Task
	var lastGateIdx []int
	bodyIds := body.TaskIds()
	for k := 0; k < cfg.maxIter; k++ {
		last := k == cfg.maxIter-1
		for _, id := range bodyIds {
			bt := bodyTasks[id]
			t := bt.Clone()
			t.Id = IterId(k, id)
			for i, p := range t.Incoming {
				switch {
				case p != ExternalInput:
					t.Incoming[i] = IterId(k, p)
				case k == 0:
					// Iteration 0 is seeded externally.
				case gatedBy[[2]uint64{uint64(id), uint64(i)}]:
					t.Incoming[i] = DecisionId(k - 1)
				default:
					t.Incoming[i] = IterId(k-1, carrySrc[[2]uint64{uint64(id), uint64(i)}])
				}
			}
			for s := range t.Outgoing {
				for i, c := range t.Outgoing[s] {
					t.Outgoing[s][i] = IterId(k, c)
				}
				if len(t.Outgoing[s]) != 0 {
					continue
				}
				key := [2]uint64{uint64(id), uint64(s)}
				if _, isGate := gateOf[key]; isGate {
					t.Outgoing[s] = []TaskId{DecisionId(k)}
				} else if src, isCarry := carryOf[key]; isCarry {
					if last {
						// The final iteration has no successor; its carried
						// state drains into the decision task as ignored
						// inputs so it never pollutes the sinks.
						t.Outgoing[s] = []TaskId{DecisionId(k)}
					} else {
						dests := make([]TaskId, len(src.Targets))
						for i, b := range src.Targets {
							dests[i] = IterId(k+1, b.To)
						}
						t.Outgoing[s] = dests
					}
				}
				// An unbound sink slot stays a per-iteration sink.
			}
			tasks = append(tasks, t)
		}

		d := Task{Id: DecisionId(k), Callback: DecisionCallback}
		if last {
			// The final decision task also drains the carried slots, so
			// its Incoming must interleave gate and carry sources in
			// per-producer emission (ascending source-slot) order for the
			// producer-matching delivery to fill the right slots.
			type src struct {
				s    iterSource
				gate int // gate index, or -1 for a carry
			}
			merged := make([]src, 0, len(gates)+len(carries))
			for j, s := range gates {
				merged = append(merged, src{s: s, gate: j})
			}
			for _, s := range carries {
				merged = append(merged, src{s: s, gate: -1})
			}
			sort.Slice(merged, func(i, j int) bool {
				if merged[i].s.From != merged[j].s.From {
					return merged[i].s.From < merged[j].s.From
				}
				return merged[i].s.FromSlot < merged[j].s.FromSlot
			})
			lastGateIdx = make([]int, S)
			for i, m := range merged {
				d.Incoming = append(d.Incoming, IterId(k, m.s.From))
				if m.gate >= 0 {
					lastGateIdx[m.gate] = i
				}
			}
			// Unconditional: the bound was reached, the gated state drains
			// to the done sinks as-is.
			d.Outgoing = make([][]TaskId, S)
		} else {
			for _, s := range gates {
				d.Incoming = append(d.Incoming, IterId(k, s.From))
			}
			d.Outgoing = make([][]TaskId, 2*S)
			d.Cond = make([]int, 2*S)
			d.Branches = 2
			for j, s := range gates {
				dests := make([]TaskId, len(s.Targets))
				for i, b := range s.Targets {
					dests[i] = IterId(k+1, b.To)
				}
				d.Outgoing[j] = dests // branch 0: continue
				d.Cond[j] = 0
				d.Cond[S+j] = 1 // branch 1: done (sink)
			}
		}
		tasks = append(tasks, d)
	}

	g := &IterativeGraph{
		ExplicitGraph: NewExplicitGraph(tasks),
		body:          body,
		pred:          pred,
		maxIter:       cfg.maxIter,
		gates:         gates,
		carries:       carries,
		lastGateIdx:   lastGateIdx,
	}
	if err := Validate(g); err != nil {
		return nil, fmt.Errorf("core: Iterate produced an invalid graph: %w", err)
	}
	return g, nil
}

// MaxIter returns the loop's iteration bound.
func (g *IterativeGraph) MaxIter() int { return g.maxIter }

// Body returns the loop body graph the iterations were unrolled from.
func (g *IterativeGraph) Body() TaskGraph { return g.body }

// DecisionFunc returns the synthetic decision callback: it reassembles the
// iteration's gated sinks, runs the convergence predicate, and routes the
// loop state through the decision task's conditional fan-out — live
// payloads on the chosen branch, dead tokens on the other.
func (g *IterativeGraph) DecisionFunc() Callback {
	S := len(g.gates)
	return func(in []Payload, id TaskId) ([]Payload, error) {
		iter := int(id & (1<<IterShift - 1))
		if iter == g.maxIter-1 {
			// Iteration bound reached: unconditional drain of the gated
			// state (the remaining inputs hold the final iteration's
			// carried slots, deliberately dropped).
			out := make([]Payload, S)
			for j, idx := range g.lastGateIdx {
				out[j] = in[idx]
			}
			return out, nil
		}
		sinks := make(map[TaskId][]Payload, S)
		for j, s := range g.gates {
			sinks[s.From] = append(sinks[s.From], in[j])
		}
		done, err := g.pred(iter, sinks)
		if err != nil {
			return nil, fmt.Errorf("core: convergence predicate at iteration %d: %w", iter, err)
		}
		out := make([]Payload, 2*S)
		for j := 0; j < S; j++ {
			if done {
				out[j] = DeadToken()
				out[S+j] = in[j]
			} else {
				out[j] = in[j]
				out[S+j] = DeadToken()
			}
		}
		return out, nil
	}
}

// RegisterDecision installs the synthetic decision callback; call it
// alongside the body's callback registrations before running the graph.
func (g *IterativeGraph) RegisterDecision(c CallbackRegistrar) error {
	return c.RegisterCallback(DecisionCallback, g.DecisionFunc())
}

// Final decodes a run's results: it locates the converged iteration (the
// single decision task whose done branch ran) and returns its sink
// payloads keyed by the gate sources' body-local task ids — the same shape
// running the body alone would produce. Per-iteration sinks of unbound
// body slots are ignored.
func (g *IterativeGraph) Final(results map[TaskId][]Payload) (iter int, sinks map[TaskId][]Payload, err error) {
	iter = -1
	for k := 0; k < g.maxIter; k++ {
		if len(results[DecisionId(k)]) == 0 {
			continue
		}
		if iter >= 0 {
			return 0, nil, fmt.Errorf("core: iterations %d and %d both produced final sinks", iter, k)
		}
		iter = k
	}
	if iter < 0 {
		return 0, nil, fmt.Errorf("core: no iteration produced final sinks")
	}
	ps := results[DecisionId(iter)]
	if len(ps) != len(g.gates) {
		return 0, nil, fmt.Errorf("core: iteration %d produced %d final sinks, want %d", iter, len(ps), len(g.gates))
	}
	sinks = make(map[TaskId][]Payload, len(g.gates))
	for j, s := range g.gates {
		sinks[s.From] = append(sinks[s.From], ps[j])
	}
	return iter, sinks, nil
}

// NewIterativeMap places an unrolled iterative graph onto shards with
// iteration-stable placement: every copy of a body task lands on the same
// shard across iterations (so feedback edges and journal replay stay
// shard-local where the body allows it), and the per-iteration decision
// tasks rotate across shards.
func NewIterativeMap(shardCount int, g *IterativeGraph) TaskMap {
	bodyIdx := make(map[TaskId]int, g.body.Size())
	for i, id := range g.body.TaskIds() {
		bodyIdx[id] = i
	}
	return NewFuncMap(shardCount, g.TaskIds(), func(id TaskId) ShardId {
		if IsDecision(id) {
			return ShardId(int(id&(1<<IterShift-1)) % shardCount)
		}
		return ShardId(bodyIdx[BodyId(id)] % shardCount)
	})
}
