package core

// Payload is the unit of data exchanged between tasks. Following the paper,
// a Payload is either a binary buffer (Data) or a pointer to an in-memory
// object (Object), or both when an object has already been serialized.
//
// Controllers pass Payloads by pointer (in-memory messages) when producer and
// consumer live on the same shard and the output does not fan out; otherwise
// the payload is serialized onto the wire, which requires either Data to be
// populated or Object to implement Serializable.
//
// Each task assumes ownership of its input payloads and relinquishes
// ownership of its outputs to the controller; callbacks must not retain or
// mutate payloads after returning them.
type Payload struct {
	// Data is the binary representation of the payload, if available.
	Data []byte
	// Object is the in-memory representation of the payload, if available.
	Object any
}

// Serializable is implemented by in-memory payload objects that can encode
// themselves to a binary buffer for transfer across shard boundaries. The
// matching deserialization routine lives in the consuming callback, which
// knows the concrete type it expects on each input slot.
type Serializable interface {
	Serialize() []byte
}

// Buffer returns a payload wrapping a binary buffer.
func Buffer(b []byte) Payload { return Payload{Data: b} }

// Object returns a payload wrapping an in-memory object.
func Object(obj any) Payload { return Payload{Object: obj} }

// Empty reports whether the payload carries neither a buffer nor an object.
func (p Payload) Empty() bool { return p.Data == nil && p.Object == nil }

// Size returns the wire size of the payload in bytes: the length of Data if
// present, otherwise the serialized length of the object, otherwise 0.
func (p Payload) Size() int {
	if p.Data != nil {
		return len(p.Data)
	}
	if s, ok := p.Object.(Serializable); ok {
		return len(s.Serialize())
	}
	return 0
}

// Wire returns the binary representation of the payload, serializing the
// object if necessary. It returns an ErrNotSerializable error when the
// payload holds only an object that does not implement Serializable.
func (p Payload) Wire() ([]byte, error) {
	if p.Data != nil {
		return p.Data, nil
	}
	if p.Object == nil {
		return nil, nil
	}
	if s, ok := p.Object.(Serializable); ok {
		return s.Serialize(), nil
	}
	return nil, ErrNotSerializable
}

// CloneForWire returns a payload that is safe to hand to a different shard:
// the in-memory object is dropped and replaced by its binary representation.
func (p Payload) CloneForWire() (Payload, error) {
	b, err := p.Wire()
	if err != nil {
		return Payload{}, err
	}
	// Copy so the receiver owns the buffer even when Data aliased the
	// producer's memory.
	cp := make([]byte, len(b))
	copy(cp, b)
	return Payload{Data: cp}, nil
}
