package core

import "sync/atomic"

// Payload is the unit of data exchanged between tasks. Following the paper,
// a Payload is either a binary buffer (Data) or a pointer to an in-memory
// object (Object), or both when an object has already been serialized.
//
// Controllers pass Payloads by pointer (in-memory messages) when producer and
// consumer live on the same shard and the output does not fan out; otherwise
// the payload is serialized onto the wire, which requires either Data to be
// populated or Object to implement Serializable.
//
// Each task assumes ownership of its input payloads and relinquishes
// ownership of its outputs to the controller; callbacks must not retain or
// mutate payloads after returning them. The routing fast path depends on
// this hand-off: a relinquished output buffer may be forwarded to a single
// consumer without a defensive copy, or published read-only to several
// consumers through a refcounted shared wire form (SharedPayload).
type Payload struct {
	// Data is the binary representation of the payload, if available.
	Data []byte
	// Object is the in-memory representation of the payload, if available.
	Object any

	// shared, when non-nil, marks Data as a refcounted wire form that is
	// read-only until Own detaches a private copy for the consumer.
	shared *sharedWire
}

// sharedWire is the refcounted immutable wire form behind copy-on-fan-out:
// one serialization shared by every consumer of an output slot. Each
// consumer detaches an owned copy via Own (or drops its reference via
// Release); the final reference returns the buffer to the arena.
type sharedWire struct {
	refs   atomic.Int32
	buf    []byte
	pooled bool // donate buf to the arena when the last reference drops
}

func (w *sharedWire) release() {
	if w.refs.Add(-1) == 0 && w.pooled {
		ReleaseBuffer(w.buf)
	}
}

// Serializable is implemented by in-memory payload objects that can encode
// themselves to a binary buffer for transfer across shard boundaries.
// Serialize must return a freshly allocated buffer that the caller assumes
// ownership of — it must not alias the object's internal state. The
// matching deserialization routine lives in the consuming callback, which
// knows the concrete type it expects on each input slot.
type Serializable interface {
	Serialize() []byte
}

// Buffer returns a payload wrapping a binary buffer.
func Buffer(b []byte) Payload { return Payload{Data: b} }

// Object returns a payload wrapping an in-memory object.
func Object(obj any) Payload { return Payload{Object: obj} }

// Empty reports whether the payload carries neither a buffer nor an object.
func (p Payload) Empty() bool { return p.Data == nil && p.Object == nil }

// Size returns the wire size of the payload in bytes: the length of Data if
// present, otherwise the serialized length of the object, otherwise 0.
func (p Payload) Size() int {
	if p.Data != nil {
		return len(p.Data)
	}
	if s, ok := p.Object.(Serializable); ok {
		return len(s.Serialize())
	}
	return 0
}

// Wire returns the binary representation of the payload, serializing the
// object if necessary. It returns an ErrNotSerializable error when the
// payload holds only an object that does not implement Serializable.
func (p Payload) Wire() ([]byte, error) {
	if p.Data != nil {
		return p.Data, nil
	}
	if p.Object == nil {
		return nil, nil
	}
	if s, ok := p.Object.(Serializable); ok {
		return s.Serialize(), nil
	}
	return nil, ErrNotSerializable
}

// WireForm returns a payload carrying only the binary form of p, without a
// defensive copy: Data is forwarded as-is and an object is serialized into
// a fresh buffer. It is the zero-copy hand-off for a single consumer — the
// producer relinquished the buffer, so the consumer may assume ownership
// directly. Callers that publish the result to more than one consumer must
// use SharedPayload instead.
func (p Payload) WireForm() (Payload, error) {
	b, err := p.Wire()
	if err != nil {
		return Payload{}, err
	}
	return Payload{Data: b}, nil
}

// CloneForWire returns a payload that is safe to hand to a different shard:
// the in-memory object is dropped and replaced by its binary representation,
// copied so the receiver owns the buffer even when Data aliased the
// producer's memory. An object payload is not double-buffered: Serialize
// already returns an owned buffer (see Serializable), which is forwarded
// directly.
func (p Payload) CloneForWire() (Payload, error) {
	if p.Data == nil && p.Object != nil {
		if s, ok := p.Object.(Serializable); ok {
			return Payload{Data: s.Serialize()}, nil
		}
		return Payload{}, ErrNotSerializable
	}
	cp := make([]byte, len(p.Data))
	copy(cp, p.Data)
	return Payload{Data: cp}, nil
}

// SharedPayload wraps the wire form of p for fan-out to refs consumers: the
// payload is serialized exactly once and the resulting buffer is shared,
// immutable, by every consumer. Each consumer must detach its private view
// with Own (delivery does this) or drop it with Release; the combined count
// of Own and Release calls across all copies of the returned payload must
// equal refs.
//
// aliased declares that the original buffer is also reachable outside the
// wrapper (e.g. the same slot is pointer-passed to a local consumer); the
// wire form is then copied into an arena buffer up front so concurrent
// mutation by the pointer-passed consumer cannot race with fan-out reads.
func SharedPayload(p Payload, refs int, aliased bool) (Payload, error) {
	wire, err := p.Wire()
	if err != nil {
		return Payload{}, err
	}
	buf := wire
	// A fresh serialization (p.Data == nil) is exclusively ours and can be
	// donated to the arena when the last consumer detaches. A relinquished
	// Data buffer is wrapped in place — unless it is still aliased, in
	// which case an arena copy isolates the fan-out readers.
	pooled := p.Data == nil
	if aliased && p.Data != nil {
		buf = GrabBuffer(len(wire))
		copy(buf, wire)
		pooled = true
	}
	w := &sharedWire{buf: buf, pooled: pooled}
	w.refs.Store(int32(refs))
	return Payload{Data: buf, shared: w}, nil
}

// Own returns a payload the caller exclusively owns. For ordinary payloads
// it is the identity; for a shared wire form it detaches a private copy and
// drops one reference. A consumer that still shares the buffer always
// copies, and releases its reference only after the copy completes — so
// when the count reads 1, every other consumer has finished detaching and
// the sole remaining holder may take the buffer itself without a copy.
func (p Payload) Own() Payload {
	w := p.shared
	if w == nil {
		return p
	}
	if w.refs.Load() == 1 {
		// Hand-off: ownership transfers to the caller, so the buffer must
		// not also be donated to the arena.
		w.refs.Store(0)
		return Payload{Data: w.buf}
	}
	cp := make([]byte, len(w.buf))
	copy(cp, w.buf)
	w.release()
	return Payload{Data: cp}
}

// Release drops the caller's reference to a shared wire form without taking
// a copy — the hand-off for payloads that will never reach a consumer
// (cancelled runs, dropped messages). It is a no-op for ordinary payloads.
func (p Payload) Release() {
	if p.shared != nil {
		p.shared.release()
	}
}

// Shared reports whether the payload is a refcounted shared wire form that
// has not yet been detached by Own.
func (p Payload) Shared() bool { return p.shared != nil }
