package core

import (
	"errors"
	"strings"
	"testing"
)

func TestSafeInvokeConvertsPanic(t *testing.T) {
	fn := func(in []Payload, id TaskId) ([]Payload, error) {
		panic("kaboom")
	}
	out, err := SafeInvoke(fn, nil, 7)
	if out != nil {
		t.Error("panicking callback should return nil outputs")
	}
	if err == nil || !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "task 7") {
		t.Errorf("err = %v", err)
	}
}

func TestSafeInvokePassesThrough(t *testing.T) {
	boom := errors.New("boom")
	fn := func(in []Payload, id TaskId) ([]Payload, error) {
		return []Payload{Buffer([]byte{1})}, boom
	}
	out, err := SafeInvoke(fn, nil, 1)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if len(out) != 1 {
		t.Errorf("out = %v", out)
	}
}

func TestSerialRecoversCallbackPanic(t *testing.T) {
	g := lineGraph(3)
	s := NewSerial()
	s.Initialize(g, nil)
	s.RegisterCallback(0, func(in []Payload, id TaskId) ([]Payload, error) {
		if id == 1 {
			panic("task 1 blew up")
		}
		return []Payload{Buffer([]byte{1})}, nil
	})
	_, err := s.Run(map[TaskId][]Payload{0: {Buffer([]byte{0})}})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("Run = %v, want panic converted to error", err)
	}
}
