package core

import (
	"strings"
	"testing"
)

// diamondGraph: 0 and 1 are leaves feeding 2; 2 fans out one output to both
// 3 and 4; both feed 5 which has a sink output.
func diamondGraph() *ExplicitGraph {
	return NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{2}}},
		{Id: 1, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{2}}},
		{Id: 2, Callback: 1, Incoming: []TaskId{0, 1}, Outgoing: [][]TaskId{{3, 4}}},
		{Id: 3, Callback: 2, Incoming: []TaskId{2}, Outgoing: [][]TaskId{{5}}},
		{Id: 4, Callback: 2, Incoming: []TaskId{2}, Outgoing: [][]TaskId{{5}}},
		{Id: 5, Callback: 3, Incoming: []TaskId{3, 4}, Outgoing: [][]TaskId{{}}},
	})
}

func TestValidateAcceptsDiamond(t *testing.T) {
	if err := Validate(diamondGraph()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestLeavesAndRoots(t *testing.T) {
	g := diamondGraph()
	leaves := Leaves(g)
	if len(leaves) != 2 || leaves[0] != 0 || leaves[1] != 1 {
		t.Errorf("Leaves = %v", leaves)
	}
	roots := Roots(g)
	if len(roots) != 1 || roots[0] != 5 {
		t.Errorf("Roots = %v", roots)
	}
}

func TestLevelsDiamond(t *testing.T) {
	rounds, err := Levels(diamondGraph())
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if len(rounds) != 4 {
		t.Fatalf("levels = %d, want 4", len(rounds))
	}
	if len(rounds[0]) != 2 || len(rounds[1]) != 1 || len(rounds[2]) != 2 || len(rounds[3]) != 1 {
		t.Errorf("round sizes = %d %d %d %d", len(rounds[0]), len(rounds[1]), len(rounds[2]), len(rounds[3]))
	}
	if rounds[1][0] != 2 || rounds[3][0] != 5 {
		t.Errorf("rounds = %v", rounds)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{1}, Outgoing: [][]TaskId{{1}}},
		{Id: 1, Callback: 0, Incoming: []TaskId{0}, Outgoing: [][]TaskId{{0}}},
	})
	err := Validate(g)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("Validate on cycle = %v", err)
	}
}

func TestValidateRejectsAsymmetricEdge(t *testing.T) {
	// 0 claims to send to 1, but 1 does not list 0 as a producer.
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{1}}},
		{Id: 1, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{}}},
	})
	if err := Validate(g); err == nil {
		t.Error("Validate should reject asymmetric edges")
	}
}

func TestValidateRejectsUnknownConsumer(t *testing.T) {
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{ExternalInput}, Outgoing: [][]TaskId{{42}}},
	})
	if err := Validate(g); err == nil {
		t.Error("Validate should reject edges to unknown tasks")
	}
}

func TestValidateRejectsUnknownProducer(t *testing.T) {
	g := NewExplicitGraph([]Task{
		{Id: 0, Callback: 0, Incoming: []TaskId{42}, Outgoing: [][]TaskId{{}}},
	})
	if err := Validate(g); err == nil {
		t.Error("Validate should reject inputs from unknown tasks")
	}
}

type badSizeGraph struct{ *ExplicitGraph }

func (b badSizeGraph) Size() int { return b.ExplicitGraph.Size() + 1 }

func TestValidateRejectsSizeMismatch(t *testing.T) {
	if err := Validate(badSizeGraph{lineGraph(3)}); err == nil {
		t.Error("Validate should reject Size/TaskIds mismatch")
	}
}

type badCallbackGraph struct{ *ExplicitGraph }

func (b badCallbackGraph) Callbacks() []CallbackId { return nil }

func TestValidateRejectsUnlistedCallback(t *testing.T) {
	if err := Validate(badCallbackGraph{lineGraph(3)}); err == nil {
		t.Error("Validate should reject callbacks missing from Callbacks()")
	}
}

func TestLocalGraph(t *testing.T) {
	g := diamondGraph()
	m := NewModuloMap(2, g.Size())
	local, err := LocalGraph(g, m, 0)
	if err != nil {
		t.Fatalf("LocalGraph: %v", err)
	}
	if len(local) != 3 {
		t.Fatalf("shard 0 has %d tasks, want 3", len(local))
	}
	for _, task := range local {
		if task.Id%2 != 0 {
			t.Errorf("task %d on wrong shard", task.Id)
		}
	}
}

func TestLocalGraphUnknownTask(t *testing.T) {
	g := diamondGraph()
	m := NewModuloMap(1, g.Size()+5)
	if _, err := LocalGraph(g, m, 0); err == nil {
		t.Error("LocalGraph should fail when the map names unknown tasks")
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	g := diamondGraph()
	m := Materialize(g)
	if m.Size() != g.Size() {
		t.Fatalf("Size = %d, want %d", m.Size(), g.Size())
	}
	for _, id := range g.TaskIds() {
		a, _ := g.Task(id)
		b, ok := m.Task(id)
		if !ok {
			t.Fatalf("materialized graph lost task %d", id)
		}
		if a.Callback != b.Callback || len(a.Incoming) != len(b.Incoming) {
			t.Errorf("task %d differs after Materialize", id)
		}
	}
	if err := Validate(m); err != nil {
		t.Errorf("materialized graph invalid: %v", err)
	}
}

func TestExplicitGraphTaskReturnsCopy(t *testing.T) {
	g := diamondGraph()
	a, _ := g.Task(2)
	a.Outgoing[0][0] = 99
	b, _ := g.Task(2)
	if b.Outgoing[0][0] == 99 {
		t.Error("ExplicitGraph.Task must return an independent copy")
	}
}

func TestContiguousIds(t *testing.T) {
	ids := ContiguousIds(4)
	for i, id := range ids {
		if id != TaskId(i) {
			t.Fatalf("ids[%d] = %d", i, id)
		}
	}
	if len(ContiguousIds(0)) != 0 {
		t.Error("ContiguousIds(0) should be empty")
	}
}

func TestCheckInitial(t *testing.T) {
	g := diamondGraph()
	ok := map[TaskId][]Payload{
		0: {Buffer([]byte{1})},
		1: {Buffer([]byte{2})},
	}
	if err := CheckInitial(g, ok); err != nil {
		t.Errorf("CheckInitial valid set: %v", err)
	}
	missing := map[TaskId][]Payload{0: {Buffer([]byte{1})}}
	if err := CheckInitial(g, missing); err == nil {
		t.Error("CheckInitial should flag the missing input for task 1")
	}
	extra := map[TaskId][]Payload{
		0: {Buffer([]byte{1})},
		1: {Buffer([]byte{2})},
		2: {Buffer([]byte{3})},
	}
	if err := CheckInitial(g, extra); err == nil {
		t.Error("CheckInitial should flag inputs for non-leaf task 2")
	}
	wrongCount := map[TaskId][]Payload{
		0: {Buffer([]byte{1}), Buffer([]byte{9})},
		1: {Buffer([]byte{2})},
	}
	if err := CheckInitial(g, wrongCount); err == nil {
		t.Error("CheckInitial should flag wrong payload count")
	}
	unknown := map[TaskId][]Payload{99: {Buffer([]byte{1})}}
	if err := CheckInitial(g, unknown); err == nil {
		t.Error("CheckInitial should flag unknown tasks")
	}
}

// Property: in any valid level partition, every task sits strictly above
// all of its producers.
func TestLevelsRespectDependenciesProperty(t *testing.T) {
	for n := 1; n <= 40; n += 3 {
		g := lineGraph(n)
		rounds, err := Levels(g)
		if err != nil {
			t.Fatal(err)
		}
		level := make(map[TaskId]int)
		for l, round := range rounds {
			for _, id := range round {
				level[id] = l
			}
		}
		if len(level) != n {
			t.Fatalf("n=%d: levels cover %d tasks", n, len(level))
		}
		for _, id := range g.TaskIds() {
			task, _ := g.Task(id)
			for _, p := range task.Producers() {
				if level[p] >= level[id] {
					t.Fatalf("n=%d: task %d at level %d not above producer %d at %d",
						n, id, level[id], p, level[p])
				}
			}
		}
	}
}
