package core

import (
	"bytes"
	"sync/atomic"
	"testing"
)

// countingBlob counts Serialize calls; each call returns a fresh owned
// buffer, per the Serializable contract.
type countingBlob struct {
	data  []byte
	calls *atomic.Int32
}

func (b countingBlob) Serialize() []byte {
	b.calls.Add(1)
	cp := make([]byte, len(b.data))
	copy(cp, b.data)
	return cp
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestWireFormZeroCopyForData(t *testing.T) {
	data := pattern(64)
	w, err := Buffer(data).WireForm()
	if err != nil {
		t.Fatal(err)
	}
	if &w.Data[0] != &data[0] {
		t.Error("WireForm of a Data payload must forward the buffer without copying")
	}
	if w.Object != nil || w.Shared() {
		t.Error("WireForm must carry only the binary form")
	}
}

func TestCloneForWireObjectSkipsSecondCopy(t *testing.T) {
	var calls atomic.Int32
	p := Object(countingBlob{data: pattern(256), calls: &calls})
	// Warm up any lazy state, then measure: the object path must cost
	// exactly the one allocation Serialize itself performs.
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.CloneForWire(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("CloneForWire(object) = %.1f allocs/op, want 1 (Serialize only, no second copy)", allocs)
	}
}

func TestCloneForWirePreservesEmptySemantics(t *testing.T) {
	c, err := Payload{}.CloneForWire()
	if err != nil {
		t.Fatal(err)
	}
	if c.Data == nil || len(c.Data) != 0 {
		t.Errorf("empty payload clone = %#v, want non-nil empty Data", c.Data)
	}
}

// TestSharedPayloadIsolation is the API-level aliasing conformance check:
// every consumer's Own() copy is private — mutating one copy must not be
// observable through any other copy or through the shared buffer.
func TestSharedPayloadIsolation(t *testing.T) {
	data := pattern(256)
	orig := append([]byte(nil), data...)
	sp, err := SharedPayload(Buffer(data), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Shared() {
		t.Fatal("SharedPayload result must report Shared")
	}
	copies := make([]Payload, 3)
	for i := range copies {
		copies[i] = sp.Own()
		if copies[i].Shared() {
			t.Fatal("Own result must not remain shared")
		}
	}
	for i := range copies {
		for j := range copies[i].Data {
			copies[i].Data[j] = byte(0xF0 + i)
		}
	}
	for i := range copies {
		for j := range copies[i].Data {
			if copies[i].Data[j] != byte(0xF0+i) {
				t.Fatalf("copy %d observed another consumer's mutation at byte %d", i, j)
			}
		}
	}
	// The producer relinquished `data`, so the LAST consumer to detach may
	// legitimately receive the original buffer as a hand-off — but at most
	// one consumer may alias it.
	aliasing := 0
	for i := range copies {
		if &copies[i].Data[0] == &orig[0] {
			t.Fatal("a consumer copy aliases the pristine snapshot") // impossible; snapshot is private
		}
		if &copies[i].Data[0] == &data[0] {
			aliasing++
		}
	}
	if aliasing > 1 {
		t.Errorf("%d consumers alias the shared wire buffer; at most the final hand-off may", aliasing)
	}
}

// TestSharedPayloadFinalOwnHandsOff: once every other consumer has detached,
// the last Own takes the shared buffer itself instead of copying.
func TestSharedPayloadFinalOwnHandsOff(t *testing.T) {
	var calls atomic.Int32
	sp, err := SharedPayload(Object(countingBlob{data: pattern(512), calls: &calls}), 3, false)
	if err != nil {
		t.Fatal(err)
	}
	ptr := &sp.Data[0]
	a, b, c := sp.Own(), sp.Own(), sp.Own()
	if &a.Data[0] == ptr || &b.Data[0] == ptr {
		t.Error("a non-final consumer received the shared buffer without a copy")
	}
	if &c.Data[0] != ptr {
		t.Error("the final consumer should receive the shared buffer as a hand-off")
	}
}

// TestSharedPayloadAliasedForcesCopy: when the producer's buffer is also
// pointer-passed locally (aliased=true), the wire form must be detached up
// front so the local consumer's mutations cannot reach fan-out readers.
func TestSharedPayloadAliasedForcesCopy(t *testing.T) {
	data := pattern(128)
	orig := append([]byte(nil), data...)
	sp, err := SharedPayload(Buffer(data), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if &sp.Data[0] == &data[0] {
		t.Fatal("aliased SharedPayload must copy the buffer")
	}
	// Simulate the pointer-passed local consumer mutating its input.
	for i := range data {
		data[i] = 0xEE
	}
	a, b := sp.Own(), sp.Own()
	if !bytes.Equal(a.Data, orig) || !bytes.Equal(b.Data, orig) {
		t.Error("fan-out consumers observed the local consumer's mutation")
	}
}

func TestSharedPayloadSerializesOnce(t *testing.T) {
	var calls atomic.Int32
	blob := countingBlob{data: pattern(512), calls: &calls}
	sp, err := SharedPayload(Object(blob), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c := sp.Own()
		if !bytes.Equal(c.Data, blob.data) {
			t.Fatalf("copy %d content mismatch", i)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("Serialize called %d times for 4 consumers, want 1", n)
	}
}

// TestSharedPayloadLastReleaseDonates: a freshly serialized shared wire
// buffer returns to the arena once the last reference drops, whether via Own
// or Release.
func TestSharedPayloadLastReleaseDonates(t *testing.T) {
	var calls atomic.Int32
	sp, err := SharedPayload(Object(countingBlob{data: pattern(1024), calls: &calls}), 2, false)
	if err != nil {
		t.Fatal(err)
	}
	ptr := &sp.Data[0]
	_ = sp.Own() // consumer 1 detaches
	sp.Release() // consumer 2 dropped (e.g. cancelled run)
	g := GrabBuffer(1024)
	if &g[0] != ptr {
		t.Skip("pool did not return the donated buffer; nothing to assert")
	}
}

// TestSharedPayloadRelinquishedDataNotDonated: wrapping a producer's raw
// Data buffer (non-aliased) must NOT donate it to the arena — the caller
// that built the payload may legitimately still hold the slice (e.g. an
// initial input passed through by an identity callback).
func TestSharedPayloadRelinquishedDataNotDonated(t *testing.T) {
	data := pattern(2048)
	sp, err := SharedPayload(Buffer(data), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = sp.Own()
	g := GrabBuffer(2048)
	if len(data) > 0 && len(g) > 0 && &g[0] == &data[0] {
		t.Error("relinquished Data buffer was donated to the arena; external holders could see it recycled")
	}
}

func TestOwnAndReleaseIdentityForPlainPayloads(t *testing.T) {
	data := pattern(32)
	p := Buffer(data)
	o := p.Own()
	if &o.Data[0] != &data[0] {
		t.Error("Own of a plain payload must be the identity")
	}
	p.Release() // must be a no-op, not a panic
	obj := Object("hello")
	if got := obj.Own(); got.Object != "hello" {
		t.Error("Own of an object payload must be the identity")
	}
}

func TestSharedPayloadNotSerializable(t *testing.T) {
	if _, err := SharedPayload(Object(struct{}{}), 2, false); err == nil {
		t.Error("SharedPayload of an opaque object should fail")
	}
}
