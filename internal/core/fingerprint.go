package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Fingerprint is a canonical digest of a task graph (and optionally the
// callback ids registered against it). Two processes that compute the same
// fingerprint agree on every task id, every edge, the fan-out lists of every
// output slot and the callback id of every task — which is exactly what two
// ranks of a distributed run must agree on before exchanging messages. The
// wire transport's rendezvous handshake rejects peers whose fingerprints
// differ, catching mismatched binaries or configurations at connection time
// instead of as a hang or a corrupted dataflow.
type Fingerprint [sha256.Size]byte

// String returns the hex form of the fingerprint.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// IsZero reports whether the fingerprint is unset.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// GraphFingerprint computes the canonical fingerprint of a task graph:
// a stable hash over the graph's size, its task ids in enumeration order,
// and for every task its callback id, its producer list (slot order), its
// per-slot consumer lists (slot and fan-out order) and its conditional-edge
// declaration (branch count plus per-slot branch assignment), plus the
// graph's declared callback set and the callback ids in registered (sorted
// order of the given slice). The encoding is length-prefixed throughout, so
// distinct structures can never collide by concatenation.
//
// registered may be nil when only the graph structure matters; passing the
// registry's callback ids additionally pins which task types both sides have
// implementations for. The fingerprint is independent of how the graph was
// built — any two TaskGraph implementations describing the same logical
// dataflow (e.g. a procedural graph and its Materialize'd copy) fingerprint
// identically.
func GraphFingerprint(g TaskGraph, registered []CallbackId) Fingerprint {
	h := sha256.New()
	var buf [8]byte
	wu64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}

	h.Write([]byte("babelflow-graph-fingerprint-v2"))
	ids := g.TaskIds()
	wu64(uint64(len(ids)))
	for _, id := range ids {
		t, ok := g.Task(id)
		if !ok {
			// A graph that enumerates an id it cannot return is invalid;
			// fold the inconsistency into the digest rather than guessing.
			wu64(uint64(id))
			wu64(^uint64(0))
			continue
		}
		wu64(uint64(t.Id))
		wu64(uint64(t.Callback))
		wu64(uint64(len(t.Incoming)))
		for _, p := range t.Incoming {
			wu64(uint64(p))
		}
		wu64(uint64(len(t.Outgoing)))
		for _, slot := range t.Outgoing {
			wu64(uint64(len(slot)))
			for _, c := range slot {
				wu64(uint64(c))
			}
		}
		// Conditional edges change which successors run, so two peers must
		// agree on them exactly. Branch indices are offset by one so the
		// unconditional marker (-1) encodes as 0.
		wu64(uint64(t.Branches))
		wu64(uint64(len(t.Cond)))
		for _, b := range t.Cond {
			wu64(uint64(b + 1))
		}
	}
	cbs := g.Callbacks()
	wu64(uint64(len(cbs)))
	for _, cb := range cbs {
		wu64(uint64(cb))
	}

	reg := append([]CallbackId(nil), registered...)
	sort.Slice(reg, func(i, j int) bool { return reg[i] < reg[j] })
	wu64(uint64(len(reg)))
	for _, cb := range reg {
		wu64(uint64(cb))
	}

	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// Ids returns the sorted callback ids currently registered — the registry's
// contribution to a graph fingerprint.
func (r *Registry) Ids() []CallbackId {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]CallbackId, 0, len(r.fns))
	for cb := range r.fns {
		ids = append(ids, cb)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
