package core

import (
	"fmt"
	"sort"
)

// TaskGraph is the procedural description of a dataflow. Implementations are
// required to compute the total number of tasks and to return the logical
// Task for any task id; everything else (local sub-graphs, levels, roots) is
// derived by the framework.
//
// In practice task graphs may contain millions of nodes, so implementations
// should answer Task queries without materializing the whole graph. TaskIds
// enumerates the (possibly non-contiguous) id space.
type TaskGraph interface {
	// Size returns the total number of tasks in the graph.
	Size() int
	// Task returns the logical task for the given id. ok is false when the
	// id does not belong to the graph.
	Task(id TaskId) (t Task, ok bool)
	// TaskIds enumerates every task id in the graph, in ascending order.
	TaskIds() []TaskId
	// Callbacks lists the task types (callback ids) the graph uses, in a
	// stable documented order so users can register implementations.
	Callbacks() []CallbackId
}

// LocalGraph instantiates the set of logical tasks the given task map
// assigns to one shard. This is the generic definition from the paper's base
// class: controllers use it to restrict the global graph to small local
// sub-graphs.
func LocalGraph(g TaskGraph, m TaskMap, shard ShardId) ([]Task, error) {
	ids := m.Ids(shard)
	tasks := make([]Task, 0, len(ids))
	for _, id := range ids {
		t, ok := g.Task(id)
		if !ok {
			return nil, fmt.Errorf("core: task map assigns unknown task %d to shard %d", id, shard)
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// Leaves returns the ids of all leaf tasks (every input external), sorted.
func Leaves(g TaskGraph) []TaskId {
	var out []TaskId
	for _, id := range g.TaskIds() {
		if t, ok := g.Task(id); ok && t.IsLeaf() {
			out = append(out, id)
		}
	}
	return out
}

// Roots returns the ids of all tasks with at least one sink output, sorted.
func Roots(g TaskGraph) []TaskId {
	var out []TaskId
	for _, id := range g.TaskIds() {
		if t, ok := g.Task(id); ok && t.IsRoot() {
			out = append(out, id)
		}
	}
	return out
}

// ContiguousIds returns the id sequence 0..n-1, the common case for simple
// graphs whose id space is dense.
func ContiguousIds(n int) []TaskId {
	ids := make([]TaskId, n)
	for i := range ids {
		ids[i] = TaskId(i)
	}
	return ids
}

// Levels partitions the graph into rounds of non-interfering tasks: level 0
// contains tasks with no internal producers, and each task sits one level
// above its deepest producer. The Legion index-launch controller executes
// the graph as one index launch per level; tasks within a level have no
// dependencies among each other.
func Levels(g TaskGraph) ([][]TaskId, error) {
	level := make(map[TaskId]int, g.Size())
	ids := g.TaskIds()

	// path is the explicit DFS stack, kept so a detected cycle can be
	// reported with the full offending path rather than a single task id.
	var path []TaskId
	var depth func(id TaskId, stack map[TaskId]bool) (int, error)
	depth = func(id TaskId, stack map[TaskId]bool) (int, error) {
		if l, ok := level[id]; ok {
			return l, nil
		}
		if stack[id] {
			// The DFS recurses from consumers into producers, so walking
			// the stack backwards from the revisited task yields the cycle
			// in dataflow (producer -> consumer) order.
			cycle := []TaskId{id}
			for i := len(path) - 1; i >= 0; i-- {
				cycle = append(cycle, path[i])
				if path[i] == id {
					break
				}
			}
			return 0, &CycleError{Path: cycle}
		}
		stack[id] = true
		path = append(path, id)
		defer func() {
			delete(stack, id)
			path = path[:len(path)-1]
		}()
		t, ok := g.Task(id)
		if !ok {
			return 0, fmt.Errorf("core: graph enumerates unknown task %d", id)
		}
		l := 0
		for _, p := range t.Incoming {
			if p == ExternalInput {
				continue
			}
			pl, err := depth(p, stack)
			if err != nil {
				return 0, err
			}
			if pl+1 > l {
				l = pl + 1
			}
		}
		level[id] = l
		return l, nil
	}

	maxLevel := 0
	for _, id := range ids {
		l, err := depth(id, map[TaskId]bool{})
		if err != nil {
			return nil, err
		}
		if l > maxLevel {
			maxLevel = l
		}
	}
	rounds := make([][]TaskId, maxLevel+1)
	for _, id := range ids {
		l := level[id]
		rounds[l] = append(rounds[l], id)
	}
	for _, r := range rounds {
		sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
	}
	return rounds, nil
}

// Validate checks the structural consistency of a task graph:
//
//   - Size matches the number of enumerated ids and ids are unique;
//   - every edge is symmetric: if a lists b as a consumer, b lists a as a
//     producer, and vice versa;
//   - the graph is acyclic (violations surface as a path-citing
//     *CycleError);
//   - every task's callback id appears in Callbacks();
//   - conditional-edge declarations are well formed: Cond covers exactly
//     the output slots, branch indices are in range, and no declared branch
//     dangles without a slot (violations surface as *CondError).
//
// All controllers accept only graphs that validate; the serial executor is
// the reference for what a valid graph computes.
func Validate(g TaskGraph) error {
	ids := g.TaskIds()
	if len(ids) != g.Size() {
		return fmt.Errorf("core: graph Size()=%d but TaskIds() enumerates %d tasks", g.Size(), len(ids))
	}
	known := make(map[TaskId]Task, len(ids))
	for i, id := range ids {
		if i > 0 && ids[i-1] >= id {
			return fmt.Errorf("core: TaskIds() not strictly ascending at index %d (%d after %d)", i, id, ids[i-1])
		}
		if id == ExternalInput {
			return fmt.Errorf("core: graph uses the reserved ExternalInput id")
		}
		t, ok := g.Task(id)
		if !ok {
			return fmt.Errorf("core: graph enumerates task %d but Task() does not return it", id)
		}
		if t.Id != id {
			return fmt.Errorf("core: Task(%d) returned a task with id %d", id, t.Id)
		}
		known[id] = t
	}
	cbs := make(map[CallbackId]bool)
	for _, cb := range g.Callbacks() {
		cbs[cb] = true
	}
	for id, t := range known {
		if !cbs[t.Callback] {
			return fmt.Errorf("core: task %d uses callback %d not listed in Callbacks()", id, t.Callback)
		}
		if err := validateCond(t); err != nil {
			return err
		}
		for slot, p := range t.Incoming {
			if p == ExternalInput {
				continue
			}
			pt, ok := known[p]
			if !ok {
				return fmt.Errorf("core: task %d input slot %d names unknown producer %d", id, slot, p)
			}
			if !taskLists(pt.Outgoing, id) {
				return fmt.Errorf("core: task %d expects input from %d, but %d does not list it as a consumer", id, p, p)
			}
		}
		for slot, consumers := range t.Outgoing {
			for _, c := range consumers {
				ct, ok := known[c]
				if !ok {
					return fmt.Errorf("core: task %d output slot %d names unknown consumer %d", id, slot, c)
				}
				if !idIn(ct.Incoming, id) {
					return fmt.Errorf("core: task %d sends to %d, but %d does not list it as a producer", id, c, c)
				}
			}
		}
	}
	if _, err := Levels(g); err != nil {
		return err
	}
	return nil
}

func taskLists(outgoing [][]TaskId, id TaskId) bool {
	for _, slot := range outgoing {
		for _, c := range slot {
			if c == id {
				return true
			}
		}
	}
	return false
}

func idIn(ids []TaskId, id TaskId) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// ExplicitGraph is a TaskGraph materialized from an explicit task list. It
// is convenient for tests, for user-assembled ad-hoc dataflows, and as the
// target representation of graph transformations.
type ExplicitGraph struct {
	tasks     map[TaskId]Task
	ids       []TaskId
	callbacks []CallbackId
}

// NewExplicitGraph builds an explicit graph from tasks. The callback list is
// derived from the tasks in ascending order.
func NewExplicitGraph(tasks []Task) *ExplicitGraph {
	g := &ExplicitGraph{tasks: make(map[TaskId]Task, len(tasks))}
	cbset := make(map[CallbackId]bool)
	for _, t := range tasks {
		g.tasks[t.Id] = t.Clone()
		g.ids = append(g.ids, t.Id)
		cbset[t.Callback] = true
	}
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	for cb := range cbset {
		g.callbacks = append(g.callbacks, cb)
	}
	sort.Slice(g.callbacks, func(i, j int) bool { return g.callbacks[i] < g.callbacks[j] })
	return g
}

// Materialize copies an arbitrary task graph into an ExplicitGraph.
func Materialize(g TaskGraph) *ExplicitGraph {
	tasks := make([]Task, 0, g.Size())
	for _, id := range g.TaskIds() {
		if t, ok := g.Task(id); ok {
			tasks = append(tasks, t)
		}
	}
	eg := NewExplicitGraph(tasks)
	eg.callbacks = append([]CallbackId(nil), g.Callbacks()...)
	return eg
}

// Size implements TaskGraph.
func (g *ExplicitGraph) Size() int { return len(g.ids) }

// Task implements TaskGraph.
func (g *ExplicitGraph) Task(id TaskId) (Task, bool) {
	t, ok := g.tasks[id]
	if !ok {
		return Task{}, false
	}
	return t.Clone(), true
}

// TaskIds implements TaskGraph.
func (g *ExplicitGraph) TaskIds() []TaskId { return append([]TaskId(nil), g.ids...) }

// Callbacks implements TaskGraph.
func (g *ExplicitGraph) Callbacks() []CallbackId {
	return append([]CallbackId(nil), g.callbacks...)
}
