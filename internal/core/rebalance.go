package core

import "errors"

// Shard rebalancing for elastic membership. Where ReassignShards only ever
// shrinks a task map around dead shards, RebalanceShards builds the map of
// an arbitrary membership epoch: members may drop out (drained or dead) AND
// new members may join, with work actively moved onto the joiners.
//
// Member identity convention: members[l] is the physical identity of the
// epoch's logical rank l. An identity in [0, m.ShardCount()) denotes that
// base shard — a survivor, which keeps its own tasks so its lineage ledger
// stays valid. An identity >= m.ShardCount() is a joiner: it owns no tasks
// under the base map and receives work from the rebalance. Identities are
// stable across epochs, so per-member journals and ledgers follow the
// member, not the logical rank.

// RebalanceShards builds the task map of a membership epoch over members.
// Three deterministic steps:
//
//  1. Survivors keep their own tasks (renumbered to their logical rank).
//  2. Orphaned tasks — whose base shard is not a member (dead or drained) —
//     are redistributed round-robin over all logical ranks.
//  3. When the member set includes joiners, tasks are moved from the most
//     loaded ranks onto the least loaded joiners until no joiner trails any
//     rank by more than one task, so new capacity takes a fair share
//     instead of only inheriting orphans.
//
// Tasks that change owners lose ledger locality; the elastic coordinator
// repairs that by adopting their recorded lineage into the new owner's
// ledger (Ledger.Adopt) before the epoch runs.
func RebalanceShards(g TaskGraph, m TaskMap, members []ShardId) (TaskMap, error) {
	if len(members) == 0 {
		return nil, errors.New("core: rebalance: no members")
	}
	base := ShardId(m.ShardCount())
	logical := make(map[ShardId]ShardId, len(members))
	for i, s := range members {
		if s < 0 {
			return nil, errors.New("core: rebalance: negative member identity")
		}
		if _, dup := logical[s]; dup {
			return nil, errors.New("core: rebalance: duplicate member")
		}
		logical[s] = ShardId(i)
	}

	ids := g.TaskIds()
	dest := make(map[TaskId]ShardId, len(ids))
	owned := make([][]TaskId, len(members))
	rr := 0
	for _, id := range ids {
		l, ok := logical[m.Shard(id)]
		if !ok {
			l = ShardId(rr % len(members))
			rr++
		}
		dest[id] = l
		owned[l] = append(owned[l], id)
	}

	var joiners []int
	for i, s := range members {
		if s >= base {
			joiners = append(joiners, i)
		}
	}
	for len(joiners) > 0 {
		src, dst := 0, joiners[0]
		for i := range owned {
			if len(owned[i]) > len(owned[src]) {
				src = i
			}
		}
		for _, j := range joiners {
			if len(owned[j]) < len(owned[dst]) {
				dst = j
			}
		}
		if src == dst || len(owned[src])-len(owned[dst]) <= 1 {
			break
		}
		// Donate the donor's highest task id: deterministic, and it peels
		// from the tail so the survivor's low ids (typically the graph's
		// leaves it already recorded) stay put.
		t := owned[src][len(owned[src])-1]
		owned[src] = owned[src][:len(owned[src])-1]
		owned[dst] = append(owned[dst], t)
		dest[t] = ShardId(dst)
	}

	return NewFuncMap(len(members), ids, func(id TaskId) ShardId { return dest[id] }), nil
}
