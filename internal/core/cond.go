package core

import (
	"bytes"
	"fmt"
	"strings"
)

// Conditional edges: a task may declare that its output slots are grouped
// into runtime branches (Task.Cond / Task.Branches). Its callback decides
// which branch is active and emits real payloads only on that branch's
// slots; every slot of a losing branch carries a dead token instead
// (SelectBranch does the bookkeeping). Dead tokens flow through the
// dataflow like ordinary payloads — readiness accounting, wire framing,
// journaling and replay are unchanged — but every controller cancels a task
// the moment any of its inputs is dead: the callback is skipped and the
// task re-emits dead tokens on all of its output slots, so the cascade
// deactivates exactly the successors of the losing branches. Dead payloads
// reaching a sink slot are dropped rather than returned, so Run's results
// contain only the live branch's outputs.
//
// This is the decision mechanism behind Iterate: each iteration's synthetic
// decision task routes the loop state to either the next iteration
// (continue branch) or the final sinks (done branch).

// deadMagic is the reserved 16-byte wire form of a dead token. The value is
// random, fixed forever, and astronomically unlikely to collide with a real
// 16-byte payload.
var deadMagic = []byte{0xde, 0xad, 0xf1, 0x0e, 0x5c, 0x1b, 0x8a, 0x47, 0xb3, 0x62, 0x9d, 0xe4, 0x0f, 0x71, 0xc8, 0x2a}

// DeadToken returns the payload that marks an unchosen conditional branch.
// It serializes like any 16-byte buffer, so dead tokens cross shard
// boundaries, journal and replay exactly like real payloads.
func DeadToken() Payload {
	return Buffer(append([]byte(nil), deadMagic...))
}

// IsDead reports whether the payload is a dead token.
func IsDead(p Payload) bool {
	return p.Object == nil && len(p.Data) == len(deadMagic) && bytes.Equal(p.Data, deadMagic)
}

// SelectBranch implements a conditional task's decision: given the task's
// freshly produced outputs (one payload per output slot), it overwrites
// every conditional slot that does not belong to the chosen branch with a
// dead token and returns the slice. Unconditional slots (Cond[slot] == -1)
// and the chosen branch's slots are left untouched.
func SelectBranch(t Task, branch int, out []Payload) ([]Payload, error) {
	if t.Branches <= 0 {
		return nil, fmt.Errorf("core: SelectBranch on task %d, which declares no branches", t.Id)
	}
	if branch < 0 || branch >= t.Branches {
		return nil, fmt.Errorf("core: task %d branch %d out of range [0,%d)", t.Id, branch, t.Branches)
	}
	if len(out) != len(t.Outgoing) || len(t.Cond) != len(t.Outgoing) {
		return nil, fmt.Errorf("core: task %d has %d output slots, got %d outputs and %d cond entries",
			t.Id, len(t.Outgoing), len(out), len(t.Cond))
	}
	for slot, b := range t.Cond {
		if b >= 0 && b != branch {
			out[slot] = DeadToken()
		}
	}
	return out, nil
}

// CancelDead is the controllers' shared cancellation step: if any input
// payload is a dead token the task must not run — every input is released
// and one dead token per output slot is returned for routing, so the
// cascade reaches the successors. ok is false when all inputs are live and
// the callback should run normally.
func CancelDead(t Task, in []Payload) ([]Payload, bool) {
	dead := false
	for _, p := range in {
		if IsDead(p) {
			dead = true
			break
		}
	}
	if !dead {
		return nil, false
	}
	for i := range in {
		in[i].Release()
	}
	out := make([]Payload, len(t.Outgoing))
	for s := range out {
		out[s] = DeadToken()
	}
	return out, true
}

// CycleError is the typed validation error for a cyclic task graph. Path
// cites one offending cycle: a sequence of task ids in which each task
// consumes an output of the previous one and the first equals the last.
type CycleError struct {
	Path []TaskId
}

// Error implements error.
func (e *CycleError) Error() string {
	var b strings.Builder
	b.WriteString("core: task graph has a cycle: ")
	for i, id := range e.Path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// CondError is the typed validation error for a malformed conditional-edge
// declaration: a Cond list that does not match the output slots, a branch
// index out of range, or a dangling branch that owns no slot. Slot and
// Branch are -1 when the violation is not specific to one.
type CondError struct {
	Id     TaskId
	Slot   int
	Branch int
	Reason string
}

// Error implements error.
func (e *CondError) Error() string {
	msg := fmt.Sprintf("core: task %d conditional edges invalid: %s", e.Id, e.Reason)
	if e.Slot >= 0 {
		msg += fmt.Sprintf(" (slot %d)", e.Slot)
	}
	if e.Branch >= 0 {
		msg += fmt.Sprintf(" (branch %d)", e.Branch)
	}
	return msg
}

// validateCond checks one task's conditional-edge declaration; it returns
// nil for tasks without branches (Cond must then be nil too).
func validateCond(t Task) error {
	if t.Branches == 0 && t.Cond == nil {
		return nil
	}
	if t.Branches < 0 {
		return &CondError{Id: t.Id, Slot: -1, Branch: t.Branches, Reason: "negative branch count"}
	}
	if t.Branches > 0 && t.Cond == nil {
		return &CondError{Id: t.Id, Slot: -1, Branch: -1, Reason: fmt.Sprintf("declares %d branches but no Cond slot assignment", t.Branches)}
	}
	if t.Branches == 0 {
		return &CondError{Id: t.Id, Slot: -1, Branch: -1, Reason: "Cond set but Branches is 0"}
	}
	if len(t.Cond) != len(t.Outgoing) {
		return &CondError{Id: t.Id, Slot: -1, Branch: -1,
			Reason: fmt.Sprintf("Cond has %d entries for %d output slots", len(t.Cond), len(t.Outgoing))}
	}
	owned := make([]bool, t.Branches)
	for slot, b := range t.Cond {
		if b < -1 || b >= t.Branches {
			return &CondError{Id: t.Id, Slot: slot, Branch: b,
				Reason: fmt.Sprintf("branch index out of range [-1,%d)", t.Branches)}
		}
		if b >= 0 {
			owned[b] = true
		}
	}
	for b, ok := range owned {
		if !ok {
			return &CondError{Id: t.Id, Slot: -1, Branch: b, Reason: "dangling branch: no output slot assigned to it"}
		}
	}
	return nil
}
