package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Observer receives execution notifications from controllers. Tests and the
// tracing tools use it to verify that every logical task executes exactly
// once and in dependency order, independent of the runtime.
type Observer interface {
	// TaskExecuted is called after a task's callback returns successfully.
	TaskExecuted(id TaskId, shard ShardId, cb CallbackId)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(id TaskId, shard ShardId, cb CallbackId)

// TaskExecuted implements Observer.
func (f ObserverFunc) TaskExecuted(id TaskId, shard ShardId, cb CallbackId) { f(id, shard, cb) }

// SchedObserver is an Observer that additionally receives scheduling
// timing: controllers with a dispatch queue report, per task, when the
// ready task entered the queue and when a worker picked it up. The
// difference is the task's queue wait — time spent ready but waiting for a
// worker, the quantity the priority scheduler minimizes for critical tasks.
// TaskQueued is called on the dispatching worker just before the callback
// runs; controllers without a queue (serial, inline) never call it.
type SchedObserver interface {
	Observer
	TaskQueued(id TaskId, enqueued, started time.Time)
}

// ReplayObserver is an Observer extension for fault-tolerant controllers:
// TaskReplayed is called when a task's recorded outputs were re-emitted
// from the lineage ledger instead of re-running its callback.
type ReplayObserver interface {
	TaskReplayed(id TaskId, shard ShardId, cb CallbackId)
}

// RecoveryObserver receives recovery-epoch notifications from a
// fault-tolerant coordinator: epoch is the attempt number about to start
// (2 = first retry) and lost lists the shards declared dead so far, in the
// original map's numbering.
type RecoveryObserver interface {
	RecoveryStarted(epoch int, lost []ShardId)
}

// ExecutionLog is a thread-safe Observer that records the order in which
// tasks executed.
type ExecutionLog struct {
	mu      sync.Mutex
	Order   []TaskId
	Shards  map[TaskId]ShardId
	counter map[TaskId]int
}

// NewExecutionLog returns an empty execution log.
func NewExecutionLog() *ExecutionLog {
	return &ExecutionLog{Shards: make(map[TaskId]ShardId), counter: make(map[TaskId]int)}
}

// TaskExecuted implements Observer.
func (l *ExecutionLog) TaskExecuted(id TaskId, shard ShardId, cb CallbackId) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.Order = append(l.Order, id)
	l.Shards[id] = shard
	l.counter[id]++
}

// Executions returns how many times the given task ran.
func (l *ExecutionLog) Executions(id TaskId) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counter[id]
}

// Len returns the number of recorded executions.
func (l *ExecutionLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.Order)
}

// Serial executes a task graph in a single goroutine, in dependency order.
// It is the reference implementation every runtime controller is tested
// against, and — per the paper — the degenerate case of over-decomposition:
// any graph can run serially while preserving a correct order of execution.
type Serial struct {
	graph    TaskGraph
	registry *Registry
	Observer Observer
}

// NewSerial returns an uninitialized serial controller.
func NewSerial() *Serial { return &Serial{registry: NewRegistry()} }

// Initialize implements Controller. The task map is ignored; a serial run
// places every task on shard 0.
func (s *Serial) Initialize(g TaskGraph, _ TaskMap) error {
	if g == nil {
		return fmt.Errorf("core: nil task graph")
	}
	if err := Validate(g); err != nil {
		return err
	}
	s.graph = g
	return nil
}

// RegisterCallback implements Controller.
func (s *Serial) RegisterCallback(cb CallbackId, fn Callback) error {
	if s.graph == nil {
		return ErrNotInitialized
	}
	return s.registry.Register(cb, fn)
}

// Run implements Controller.
func (s *Serial) Run(initial map[TaskId][]Payload) (map[TaskId][]Payload, error) {
	return s.RunContext(context.Background(), initial)
}

// RunContext implements Controller. The serial loop checks the context
// between tasks, so cancellation latency is bounded by the longest single
// callback.
func (s *Serial) RunContext(ctx context.Context, initial map[TaskId][]Payload) (map[TaskId][]Payload, error) {
	if s.graph == nil {
		return nil, ErrNotInitialized
	}
	if err := s.registry.Covers(s.graph); err != nil {
		return nil, err
	}
	if err := CheckInitial(s.graph, initial); err != nil {
		return nil, err
	}

	st := NewDataflowState(s.graph)
	for id, ps := range initial {
		for _, p := range ps {
			if err := st.DeliverExternal(id, p); err != nil {
				return nil, err
			}
		}
	}

	rounds, err := Levels(s.graph)
	if err != nil {
		return nil, err
	}
	results := make(map[TaskId][]Payload)
	for _, round := range rounds {
		for _, id := range round {
			if ctx.Err() != nil {
				return nil, Cancelled(ctx)
			}
			t, _ := s.graph.Task(id)
			in, ready := st.Take(id)
			if !ready {
				return nil, fmt.Errorf("core: task %d reached in dependency order without all inputs", id)
			}
			out, cancelled := CancelDead(t, in)
			if !cancelled {
				fn, _ := s.registry.Lookup(t.Callback)
				out, err = SafeInvoke(fn, in, id)
				if err != nil {
					return nil, fmt.Errorf("core: task %d (callback %d): %w", id, t.Callback, err)
				}
				if len(out) != len(t.Outgoing) {
					return nil, fmt.Errorf("core: task %d produced %d outputs, graph declares %d slots", id, len(out), len(t.Outgoing))
				}
				if s.Observer != nil {
					s.Observer.TaskExecuted(id, 0, t.Callback)
				}
			}
			for slot, consumers := range t.Outgoing {
				if len(consumers) == 0 {
					if IsDead(out[slot]) {
						continue
					}
					results[id] = append(results[id], out[slot])
					continue
				}
				for i, c := range consumers {
					p := out[slot]
					if i > 0 {
						// Fan-out: every consumer after the first receives
						// an owned copy.
						cp, err := p.CloneForWire()
						if err != nil {
							return nil, fmt.Errorf("core: task %d output slot %d fans out: %w", id, slot, err)
						}
						p = cp
					}
					if err := st.Deliver(c, id, p); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return results, nil
}

// DataflowState tracks, for every task of a graph, which input slots have
// been filled. Controllers share it as their readiness bookkeeping; it is
// not safe for concurrent use — each controller shard guards its own state.
type DataflowState struct {
	graph   TaskGraph
	pending map[TaskId]*taskInputs
}

type taskInputs struct {
	task    Task
	slots   []Payload
	filled  []bool
	missing int
}

// NewDataflowState returns empty input-tracking state for the graph.
func NewDataflowState(g TaskGraph) *DataflowState {
	return &DataflowState{graph: g, pending: make(map[TaskId]*taskInputs)}
}

func (st *DataflowState) entry(id TaskId) (*taskInputs, error) {
	ti, ok := st.pending[id]
	if ok {
		return ti, nil
	}
	t, ok := st.graph.Task(id)
	if !ok {
		return nil, fmt.Errorf("core: delivery to unknown task %d", id)
	}
	ti = &taskInputs{
		task:    t,
		slots:   make([]Payload, len(t.Incoming)),
		filled:  make([]bool, len(t.Incoming)),
		missing: len(t.Incoming),
	}
	st.pending[id] = ti
	return ti, nil
}

// Deliver records a payload arriving at task id from producer from. When a
// producer feeds several input slots of the same consumer, successive
// deliveries fill successive slots; producers emit output slots in order and
// transports preserve pairwise FIFO, so slot assignment is deterministic.
// It returns the readiness of the task after the delivery via Ready.
//
// A shared fan-out wire form is stored as-is: whoever hands the assembled
// inputs (Take) to a task callback must detach private copies first
// (Payload.Own), so the detach cost lands on the executing worker rather
// than on the delivery loop.
func (st *DataflowState) Deliver(id, from TaskId, p Payload) error {
	ti, err := st.entry(id)
	if err != nil {
		return err
	}
	for slot, producer := range ti.task.Incoming {
		if producer == from && !ti.filled[slot] {
			ti.slots[slot] = p
			ti.filled[slot] = true
			ti.missing--
			return nil
		}
	}
	return fmt.Errorf("core: task %d has no open input slot for producer %d", id, from)
}

// DeliverExternal records an externally provided payload, filling the next
// open ExternalInput slot.
func (st *DataflowState) DeliverExternal(id TaskId, p Payload) error {
	return st.Deliver(id, ExternalInput, p)
}

// Ready reports whether every input slot of the task has been filled.
func (st *DataflowState) Ready(id TaskId) bool {
	ti, ok := st.pending[id]
	if !ok {
		// Unseen task: ready only if it has no inputs at all.
		t, exists := st.graph.Task(id)
		return exists && len(t.Incoming) == 0
	}
	return ti.missing == 0
}

// Take returns the assembled input payloads of a ready task and releases the
// bookkeeping. ok is false when the task is not ready.
func (st *DataflowState) Take(id TaskId) ([]Payload, bool) {
	ti, ok := st.pending[id]
	if !ok {
		t, exists := st.graph.Task(id)
		if exists && len(t.Incoming) == 0 {
			return nil, true
		}
		return nil, false
	}
	if ti.missing != 0 {
		return nil, false
	}
	delete(st.pending, id)
	return ti.slots, true
}
