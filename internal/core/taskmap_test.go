package core

import (
	"testing"
	"testing/quick"
)

func TestModuloMapMatchesPaperListing3(t *testing.T) {
	// Listing 3: shard(task) = task % shardCount; getIds walks shard,
	// shard+shards, ... up to taskCount.
	m := NewModuloMap(3, 10)
	if m.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d", m.ShardCount())
	}
	want := map[ShardId][]TaskId{
		0: {0, 3, 6, 9},
		1: {1, 4, 7},
		2: {2, 5, 8},
	}
	for s, ids := range want {
		got := m.Ids(s)
		if len(got) != len(ids) {
			t.Fatalf("Ids(%d) = %v, want %v", s, got, ids)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Errorf("Ids(%d)[%d] = %d, want %d", s, i, got[i], ids[i])
			}
			if m.Shard(ids[i]) != s {
				t.Errorf("Shard(%d) = %d, want %d", ids[i], m.Shard(ids[i]), s)
			}
		}
	}
}

func TestModuloMapOutOfRangeShard(t *testing.T) {
	m := NewModuloMap(2, 4)
	if ids := m.Ids(-1); ids != nil {
		t.Errorf("Ids(-1) = %v", ids)
	}
	if ids := m.Ids(2); ids != nil {
		t.Errorf("Ids(2) = %v", ids)
	}
}

func TestModuloMapPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero shards")
		}
	}()
	NewModuloMap(0, 4)
}

func TestBlockMapContiguity(t *testing.T) {
	m := NewBlockMap(3, 10) // blocks of 4: [0..3] [4..7] [8..9]
	if got := m.Ids(0); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("Ids(0) = %v", got)
	}
	if got := m.Ids(2); len(got) != 2 || got[0] != 8 {
		t.Errorf("Ids(2) = %v", got)
	}
	if m.Shard(9) != 2 {
		t.Errorf("Shard(9) = %d", m.Shard(9))
	}
}

func TestBlockMapMoreShardsThanTasks(t *testing.T) {
	m := NewBlockMap(8, 3)
	count := 0
	for s := ShardId(0); int(s) < m.ShardCount(); s++ {
		count += len(m.Ids(s))
	}
	if count != 3 {
		t.Errorf("total assigned = %d, want 3", count)
	}
}

func TestListMapNonContiguousIds(t *testing.T) {
	ids := []TaskId{100, 7, 2000, 3}
	m := NewListMap(2, ids)
	if m.Shard(100) != 0 || m.Shard(7) != 1 || m.Shard(2000) != 0 || m.Shard(3) != 1 {
		t.Error("round-robin placement over enumeration order broken")
	}
	got := m.Ids(0)
	if len(got) != 2 || got[0] != 100 || got[1] != 2000 {
		t.Errorf("Ids(0) = %v", got)
	}
}

func TestFuncMap(t *testing.T) {
	ids := ContiguousIds(6)
	m := NewFuncMap(2, ids, func(id TaskId) ShardId {
		if id < 3 {
			return 0
		}
		return 1
	})
	if len(m.Ids(0)) != 3 || len(m.Ids(1)) != 3 {
		t.Errorf("Ids split = %v / %v", m.Ids(0), m.Ids(1))
	}
	if m.Shard(5) != 1 {
		t.Errorf("Shard(5) = %d", m.Shard(5))
	}
}

// Property: for any shard/task counts, modulo and block maps partition the
// task id space: every task appears on exactly one shard and Shard agrees
// with Ids.
func TestMapPartitionProperty(t *testing.T) {
	check := func(shards8, tasks8 uint8) bool {
		shards := int(shards8%16) + 1
		tasks := int(tasks8 % 64)
		for _, m := range []TaskMap{
			NewModuloMap(shards, tasks),
			NewBlockMap(shards, tasks),
			NewListMap(shards, ContiguousIds(tasks)),
		} {
			seen := make(map[TaskId]int)
			for s := ShardId(0); int(s) < m.ShardCount(); s++ {
				for _, id := range m.Ids(s) {
					seen[id]++
					if m.Shard(id) != s {
						return false
					}
				}
			}
			if len(seen) != tasks {
				return false
			}
			for _, n := range seen {
				if n != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateMapDetectsGap(t *testing.T) {
	g := lineGraph(4)
	m := NewModuloMap(2, 3) // covers only tasks 0..2
	if err := ValidateMap(g, m); err == nil {
		t.Error("ValidateMap should reject a map that misses task 3")
	}
	if err := ValidateMap(g, NewModuloMap(2, 4)); err != nil {
		t.Errorf("ValidateMap on full cover: %v", err)
	}
}

type dupMap struct{ TaskMap }

func (d dupMap) Ids(s ShardId) []TaskId {
	if s == 0 {
		return []TaskId{0, 1}
	}
	return []TaskId{1}
}
func (d dupMap) Shard(id TaskId) ShardId {
	if id == 1 {
		return 1
	}
	return 0
}
func (d dupMap) ShardCount() int { return 2 }

func TestValidateMapDetectsDuplicateAndDisagreement(t *testing.T) {
	g := lineGraph(2)
	if err := ValidateMap(g, dupMap{}); err == nil {
		t.Error("ValidateMap should reject duplicate/disagreeing assignments")
	}
}

// lineGraph builds a chain 0 -> 1 -> ... -> n-1 with external input at 0 and
// a sink at n-1. Used across core tests.
func lineGraph(n int) *ExplicitGraph {
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		t := Task{Id: TaskId(i), Callback: 0}
		if i == 0 {
			t.Incoming = []TaskId{ExternalInput}
		} else {
			t.Incoming = []TaskId{TaskId(i - 1)}
		}
		if i == n-1 {
			t.Outgoing = [][]TaskId{{}}
		} else {
			t.Outgoing = [][]TaskId{{TaskId(i + 1)}}
		}
		tasks[i] = t
	}
	return NewExplicitGraph(tasks)
}
