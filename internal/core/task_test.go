package core

import (
	"testing"
)

func TestTaskDegreesAndLeafRoot(t *testing.T) {
	task := Task{
		Id:       7,
		Callback: 1,
		Incoming: []TaskId{ExternalInput, ExternalInput},
		Outgoing: [][]TaskId{{3, 4}, {}},
	}
	if got := task.InDegree(); got != 2 {
		t.Errorf("InDegree = %d, want 2", got)
	}
	if got := task.OutDegree(); got != 2 {
		t.Errorf("OutDegree = %d, want 2", got)
	}
	if !task.IsLeaf() {
		t.Error("task with only external inputs should be a leaf")
	}
	if !task.IsRoot() {
		t.Error("task with an empty output slot should be a root")
	}
}

func TestTaskNotLeafWithInternalProducer(t *testing.T) {
	task := Task{Id: 1, Incoming: []TaskId{ExternalInput, 0}}
	if task.IsLeaf() {
		t.Error("task with an internal producer must not be a leaf")
	}
}

func TestTaskNoOutputsIsRoot(t *testing.T) {
	task := Task{Id: 1}
	if !task.IsRoot() {
		t.Error("task without output slots is a root")
	}
	if !task.IsLeaf() {
		t.Error("task without input slots is a leaf")
	}
}

func TestTaskConsumersProducersDedup(t *testing.T) {
	task := Task{
		Id:       5,
		Incoming: []TaskId{2, 2, ExternalInput, 1},
		Outgoing: [][]TaskId{{9, 8}, {8}},
	}
	cons := task.Consumers()
	if len(cons) != 2 || cons[0] != 8 || cons[1] != 9 {
		t.Errorf("Consumers = %v, want [8 9]", cons)
	}
	prods := task.Producers()
	if len(prods) != 2 || prods[0] != 1 || prods[1] != 2 {
		t.Errorf("Producers = %v, want [1 2]", prods)
	}
}

func TestTaskCloneIsDeep(t *testing.T) {
	orig := Task{
		Id:       3,
		Callback: 2,
		Incoming: []TaskId{0, 1},
		Outgoing: [][]TaskId{{4}},
	}
	c := orig.Clone()
	c.Incoming[0] = 99
	c.Outgoing[0][0] = 99
	if orig.Incoming[0] != 0 {
		t.Error("Clone shares Incoming storage")
	}
	if orig.Outgoing[0][0] != 4 {
		t.Error("Clone shares Outgoing storage")
	}
}

func TestNewTask(t *testing.T) {
	task := NewTask(11, 3)
	if task.Id != 11 || task.Callback != 3 {
		t.Errorf("NewTask = %+v", task)
	}
	if len(task.Incoming) != 0 || len(task.Outgoing) != 0 {
		t.Error("NewTask should have no edges")
	}
}

func TestTaskStringMentionsId(t *testing.T) {
	s := Task{Id: 42}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestPayloadBufferAndObject(t *testing.T) {
	b := Buffer([]byte{1, 2, 3})
	if b.Empty() || b.Size() != 3 {
		t.Errorf("buffer payload: empty=%v size=%d", b.Empty(), b.Size())
	}
	o := Object("hello")
	if o.Empty() {
		t.Error("object payload reported empty")
	}
	var z Payload
	if !z.Empty() || z.Size() != 0 {
		t.Error("zero payload should be empty with size 0")
	}
}

type serObj struct{ v byte }

func (s serObj) Serialize() []byte { return []byte{s.v, s.v} }

func TestPayloadWireSerializesObject(t *testing.T) {
	p := Object(serObj{7})
	w, err := p.Wire()
	if err != nil {
		t.Fatalf("Wire: %v", err)
	}
	if len(w) != 2 || w[0] != 7 {
		t.Errorf("Wire = %v", w)
	}
	if p.Size() != 2 {
		t.Errorf("Size = %d, want 2", p.Size())
	}
}

func TestPayloadWireErrorsOnOpaqueObject(t *testing.T) {
	p := Object(struct{ x int }{1})
	if _, err := p.Wire(); err == nil {
		t.Error("Wire should fail for a non-Serializable object")
	}
}

func TestPayloadCloneForWireCopies(t *testing.T) {
	buf := []byte{1, 2, 3}
	p := Buffer(buf)
	c, err := p.CloneForWire()
	if err != nil {
		t.Fatalf("CloneForWire: %v", err)
	}
	buf[0] = 9
	if c.Data[0] != 1 {
		t.Error("CloneForWire must copy the buffer")
	}
	if c.Object != nil {
		t.Error("CloneForWire must drop the object")
	}
}

func TestPayloadWireNilObject(t *testing.T) {
	var p Payload
	w, err := p.Wire()
	if err != nil || w != nil {
		t.Errorf("Wire on empty payload = %v, %v", w, err)
	}
}
