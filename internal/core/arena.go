package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Wire-buffer arena: a set of size-classed sync.Pool free lists backing the
// message fast path. Serialized wire forms, region staging buffers and
// fan-out copies churn at a high rate but have controller-bounded lifetimes,
// so recycling them keeps the steady-state message path allocation-free
// instead of pressuring the garbage collector once per message.
//
// Ownership rule: a buffer obtained from GrabBuffer may be released exactly
// once, and only by the owner that obtained it, after every reader of the
// buffer is done. Buffers handed to task callbacks (payload copies a
// consumer assumes ownership of) escape the arena permanently and must NOT
// be released; the arena is refilled by the refcounted shared-wire wrappers
// (payload.go) and the region store, whose buffers never escape.

const (
	// arenaMinBits..arenaMaxBits bound the size classes: 64 B to 4 MiB.
	// Smaller buffers are cheaper to allocate than to pool; larger ones are
	// rare enough that pinning them in a pool wastes memory.
	arenaMinBits = 6
	arenaMaxBits = 22
)

var arenaPools [arenaMaxBits + 1]sync.Pool

// arenaBox carries a pooled buffer's slice header between Release and Grab.
// The boxes recycle through their own pool, so neither direction allocates
// in steady state: a pool of bare []byte values would box the slice header
// into the interface on every Put, costing one heap allocation per released
// buffer — on the wire receive path, one per message.
type arenaBox struct{ b []byte }

var arenaBoxes = sync.Pool{New: func() any { return new(arenaBox) }}

// Arena accounting: an opt-in grabs-minus-releases counter for leak
// regression tests. The flag is checked with one atomic load on the hot
// path; production runs leave it disabled.
var (
	arenaTrack       atomic.Bool
	arenaOutstanding atomic.Int64
)

// ArenaAccounting enables or disables outstanding-buffer accounting and
// resets the counter. Tests bracket a scenario with
// ArenaAccounting(true) … ArenaOutstanding() to prove every grabbed buffer
// was released (or deliberately escaped).
func ArenaAccounting(on bool) {
	arenaOutstanding.Store(0)
	arenaTrack.Store(on)
}

// ArenaOutstanding returns grabs minus releases since accounting was last
// enabled. Buffers handed off to consumers (which, per the ownership rule,
// escape the arena) count as outstanding — scope the accounting window to
// paths whose buffers must all come back.
func ArenaOutstanding() int64 { return arenaOutstanding.Load() }

// arenaClass returns the smallest class whose capacity holds n, or -1 when n
// is outside the pooled range.
func arenaClass(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1))
	if c < arenaMinBits {
		c = arenaMinBits
	}
	if c > arenaMaxBits {
		return -1
	}
	return c
}

// GrabBuffer returns a length-n buffer from the arena, allocating a fresh
// one when the matching pool is empty or n is outside the pooled range. The
// contents are unspecified; the caller is expected to overwrite them fully.
func GrabBuffer(n int) []byte {
	if arenaTrack.Load() {
		arenaOutstanding.Add(1)
	}
	c := arenaClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := arenaPools[c].Get(); v != nil {
		box := v.(*arenaBox)
		b := box.b[:n]
		box.b = nil
		arenaBoxes.Put(box)
		return b
	}
	return make([]byte, n, 1<<c)
}

// ReleaseBuffer returns a buffer to the arena for reuse. Any buffer may be
// donated — ones from GrabBuffer and ones the controller owns outright (a
// relinquished wire form); buffers outside the pooled size range are
// dropped. The caller must guarantee no reference to the buffer survives
// the call.
func ReleaseBuffer(b []byte) {
	if arenaTrack.Load() {
		arenaOutstanding.Add(-1)
	}
	if cap(b) == 0 {
		return
	}
	// Floor to the largest class the capacity fully covers, so a Grab from
	// that class can always reslice to the class's nominal size.
	c := bits.Len(uint(cap(b))) - 1
	if c < arenaMinBits || c > arenaMaxBits {
		return
	}
	box := arenaBoxes.Get().(*arenaBox)
	box.b = b[:0]
	arenaPools[c].Put(box)
}
