package core

// DefaultLedgerCache is the default bound on a store-backed ledger's
// in-memory cache (entries, not bytes): large enough that the figure
// workloads rarely spill, small enough that a long run's ledger stays
// bounded.
const DefaultLedgerCache = 4096

// LedgerStore is the durable backend of a lineage Ledger: an append-only
// record of completed tasks' serialized outputs, implemented by
// internal/journal over a segmented CRC32C log. The contract mirrors the
// idempotence rules of the replay path:
//
//   - Append must make the record observable to a future Get/TaskIds (per
//     its durability policy); re-appending a task id replaces the entry.
//   - Get returns ok=false for any task the store cannot produce intact —
//     never-journaled, torn away, or corrupt. The caller re-executes the
//     task, which is always correct.
//   - Get returns buffers owned by the caller (no aliasing with the
//     store's internals).
//   - TaskIds lists every task Get would currently report ok for.
//
// Implementations must be safe for concurrent use.
type LedgerStore interface {
	Append(id TaskId, outs [][]byte) error
	Get(id TaskId) ([][]byte, bool, error)
	TaskIds() []TaskId
	Sync() error
	Close() error
}
