package journal

import (
	"bytes"
	"testing"
	"time"
)

// waitCommitted polls the watermark until it reaches want or the deadline
// passes.
func waitCommitted(t *testing.T, l *Log, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Committed() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("committed watermark stuck at %d, want %d", l.Committed(), want)
}

func TestGroupCommitIntervalAdvancesWatermark(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncGroupCommit, CommitInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing forced a commit; the interval alone must make the records
	// durable.
	waitCommitted(t, l, 5)
	if s := l.Stats(); s.Committed != 5 || s.Records != 5 {
		t.Fatalf("stats = %+v, want 5 committed of 5", s)
	}
}

func TestGroupCommitRecordThresholdCommitsEarly(t *testing.T) {
	// A commit interval far beyond the test's patience: only the record
	// threshold can advance the watermark.
	l, err := Open(t.TempDir(), Options{
		Sync: SyncGroupCommit, CommitInterval: time.Hour, CommitRecords: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 7; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Committed(); got != 0 {
		t.Fatalf("watermark advanced to %d before the threshold", got)
	}
	if _, err := l.Append([]byte{7}); err != nil {
		t.Fatal(err)
	}
	waitCommitted(t, l, 8)
}

func TestGroupCommitWatermarkSemantics(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncGroupCommit, CommitInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.Committed(); got != 0 {
		t.Fatalf("fresh log committed = %d", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Written but not yet durable: readable, not committed.
	if got := l.Committed(); got != 0 {
		t.Fatalf("committed = %d before any fsync", got)
	}
	if got := collect(t, l); len(got) != 3 {
		t.Fatalf("%d records readable, want 3", len(got))
	}
	// A manual Sync closes the window.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Committed(); got != 3 {
		t.Fatalf("committed = %d after Sync, want 3", got)
	}
}

func TestGroupCommitReopenResumesWatermark(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Sync: SyncGroupCommit, CommitInterval: time.Hour}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// Close flushes the open window; reopen must treat every scanned
	// record as committed.
	l = reopen(t, l, opt)
	defer l.Close()
	if got := l.Committed(); got != 4 {
		t.Fatalf("committed = %d after reopen, want 4", got)
	}
}

func TestGroupCommitEveryRecordWatermark(t *testing.T) {
	// The watermark is meaningful under every policy: with SyncEveryRecord
	// it tracks Records exactly.
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 1; i <= 3; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if got := l.Committed(); got != i {
			t.Fatalf("committed = %d after %d appends", got, i)
		}
	}
}

func TestGroupCommitRotationCommits(t *testing.T) {
	// Rotation seals the active segment with an fsync, so the watermark
	// advances even with an infinite interval.
	l, err := Open(t.TempDir(), Options{
		Sync: SyncGroupCommit, CommitInterval: time.Hour, SegmentBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	// Each 48-byte framed record overflows the 64-byte segment, so every
	// append after the first rotated — at least the pre-rotation prefix is
	// committed.
	if got := l.Committed(); got < 3 {
		t.Fatalf("committed = %d after 3 rotations", got)
	}
}

func TestLedgerStoreCommittedPassthrough(t *testing.T) {
	s, err := OpenLedgerStore(t.TempDir(), Options{Sync: SyncGroupCommit, CommitInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(1, [][]byte{{0xAA}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Committed(); got != 0 {
		t.Fatalf("committed = %d before sync", got)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.Committed(); got != 1 {
		t.Fatalf("committed = %d after sync, want 1", got)
	}
}
