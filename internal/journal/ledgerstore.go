package journal

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/babelflow/babelflow-go/internal/core"
)

// LedgerStore adapts a Log into the durable backend of the lineage ledger
// (core.LedgerStore): each record is one completed task's serialized
// outputs. Opening a store replays the log's surviving records into an
// index, so a restarted run knows exactly which tasks need not re-execute.
// If a task appears more than once (a crash between the append and the
// ledger's acknowledgment can re-record it), the last record wins — the
// idempotence contract makes every copy equally valid.
//
// Record body layout (little-endian):
//
//	u64  task id
//	u32  slot count
//	{ u32 length | payload bytes } per slot
type LedgerStore struct {
	mu  sync.Mutex
	log *Log
	idx map[core.TaskId]Ref
}

// OpenLedgerStore opens (or creates) the journal at dir and indexes its
// surviving records. Undecodable bodies — a record that passed its CRC but
// does not parse, which only a software bug produces — are skipped like
// corrupt records: their tasks re-execute.
func OpenLedgerStore(dir string, opt Options) (*LedgerStore, error) {
	log, err := Open(dir, opt)
	if err != nil {
		return nil, err
	}
	s := &LedgerStore{log: log, idx: make(map[core.TaskId]Ref)}
	err = log.Scan(func(ref Ref, body []byte) error {
		if id, ok := decodeTaskId(body); ok {
			s.idx[id] = ref
		}
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	return s, nil
}

// Append journals the task's serialized output slots and indexes the record.
// Durability follows the log's sync policy. The store does not retain outs.
func (s *LedgerStore) Append(id core.TaskId, outs [][]byte) error {
	n := 12 // task id + slot count
	for _, o := range outs {
		n += 4 + len(o)
	}
	body := make([]byte, n)
	binary.LittleEndian.PutUint64(body[0:8], uint64(id))
	binary.LittleEndian.PutUint32(body[8:12], uint32(len(outs)))
	off := 12
	for _, o := range outs {
		binary.LittleEndian.PutUint32(body[off:off+4], uint32(len(o)))
		off += 4
		copy(body[off:], o)
		off += len(o)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, err := s.log.Append(body)
	if err != nil {
		return err
	}
	s.idx[id] = ref
	return nil
}

// Get returns the journaled output slots of a task, or ok=false when the
// journal holds no (intact) record for it. The returned buffers are fresh
// copies owned by the caller.
func (s *LedgerStore) Get(id core.TaskId) ([][]byte, bool, error) {
	s.mu.Lock()
	ref, ok := s.idx[id]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	body, err := s.log.ReadAt(ref)
	if err != nil {
		// A record that rotted after indexing is equivalent to one skipped
		// at open: forget it and let the task re-execute.
		s.mu.Lock()
		delete(s.idx, id)
		s.mu.Unlock()
		return nil, false, nil
	}
	outs, err := decodeOutputs(body)
	if err != nil {
		s.mu.Lock()
		delete(s.idx, id)
		s.mu.Unlock()
		return nil, false, nil
	}
	return outs, true, nil
}

// Has reports whether the store indexes a record for the task.
func (s *LedgerStore) Has(id core.TaskId) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.idx[id]
	return ok
}

// TaskIds returns the journaled task ids in ascending order.
func (s *LedgerStore) TaskIds() []core.TaskId {
	s.mu.Lock()
	ids := make([]core.TaskId, 0, len(s.idx))
	for id := range s.idx {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Len returns the number of journaled tasks.
func (s *LedgerStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Sync flushes unsynced appends to stable storage.
func (s *LedgerStore) Sync() error { return s.log.Sync() }

// Committed returns the underlying log's crash-safe watermark: how many
// journaled records are guaranteed to survive a crash. Under group commit
// the ledger uses it to tell replayable history from the at-risk window.
func (s *LedgerStore) Committed() int { return s.log.Committed() }

// Close syncs and closes the underlying log.
func (s *LedgerStore) Close() error { return s.log.Close() }

// Stats returns the underlying log's counters.
func (s *LedgerStore) Stats() Stats { return s.log.Stats() }

// decodeTaskId extracts the task id of a record body without materializing
// the slots, validating the full layout so truncated bodies are rejected.
func decodeTaskId(body []byte) (core.TaskId, bool) {
	if _, err := decodeOutputs(body); err != nil {
		return 0, false
	}
	return core.TaskId(binary.LittleEndian.Uint64(body[0:8])), true
}

// decodeOutputs parses a record body into per-slot copies.
func decodeOutputs(body []byte) ([][]byte, error) {
	if len(body) < 12 {
		return nil, fmt.Errorf("journal: ledger record too short (%d bytes)", len(body))
	}
	nslots := int(binary.LittleEndian.Uint32(body[8:12]))
	if nslots < 0 || nslots > len(body) {
		return nil, fmt.Errorf("journal: ledger record declares %d slots", nslots)
	}
	outs := make([][]byte, nslots)
	off := 12
	for i := 0; i < nslots; i++ {
		if len(body)-off < 4 {
			return nil, fmt.Errorf("journal: ledger record truncated at slot %d", i)
		}
		n := int(binary.LittleEndian.Uint32(body[off : off+4]))
		off += 4
		if n < 0 || len(body)-off < n {
			return nil, fmt.Errorf("journal: ledger record slot %d overruns body", i)
		}
		outs[i] = append([]byte(nil), body[off:off+n]...)
		off += n
	}
	if off != len(body) {
		return nil, fmt.Errorf("journal: ledger record has %d trailing bytes", len(body)-off)
	}
	return outs, nil
}
