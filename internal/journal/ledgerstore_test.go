package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

func TestLedgerStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLedgerStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.TaskId][][]byte{
		1: {[]byte("one-a"), []byte("one-b")},
		2: {},
		7: {nil, []byte("seven"), []byte("")},
	}
	for id, outs := range want {
		if err := s.Append(id, outs); err != nil {
			t.Fatalf("append %d: %v", id, err)
		}
	}
	check := func(s *LedgerStore) {
		t.Helper()
		if s.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(want))
		}
		for id, outs := range want {
			got, ok, err := s.Get(id)
			if err != nil || !ok {
				t.Fatalf("get %d: ok=%v err=%v", id, ok, err)
			}
			if len(got) != len(outs) {
				t.Fatalf("task %d: %d slots, want %d", id, len(got), len(outs))
			}
			for i := range outs {
				if !bytes.Equal(got[i], outs[i]) {
					t.Fatalf("task %d slot %d mismatch", id, i)
				}
			}
		}
		if _, ok, _ := s.Get(99); ok {
			t.Fatal("phantom task found")
		}
		ids := s.TaskIds()
		if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 7 {
			t.Fatalf("TaskIds = %v", ids)
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: the index is rebuilt from the segments.
	s, err = OpenLedgerStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	check(s)
}

func TestLedgerStoreLastRecordWins(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLedgerStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(5, [][]byte{[]byte("stale")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(5, [][]byte{[]byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = OpenLedgerStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, ok, err := s.Get(5)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if len(got) != 1 || !bytes.Equal(got[0], []byte("fresh")) {
		t.Fatalf("got %q, want the re-recorded outputs", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate records, want 1", s.Len())
	}
}

func TestLedgerStoreGetCopies(t *testing.T) {
	s, err := OpenLedgerStore(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(1, [][]byte{[]byte("abcd")}); err != nil {
		t.Fatal(err)
	}
	a, _, _ := s.Get(1)
	a[0][0] = 'X'
	b, _, _ := s.Get(1)
	if !bytes.Equal(b[0], []byte("abcd")) {
		t.Fatal("Get returned aliased buffers")
	}
}

func TestLedgerStoreSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLedgerStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := core.TaskId(0); id < 10; id++ {
		if err := s.Append(id, [][]byte{bytes.Repeat([]byte{byte(id)}, 32)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop 10 bytes off the (single) segment, landing inside
	// the last record.
	seg := filepath.Join(dir, "seg-00000001.wal")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-10); err != nil {
		t.Fatal(err)
	}
	s, err = OpenLedgerStore(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s.Close()
	if s.Len() != 9 {
		t.Fatalf("torn tail: %d tasks indexed, want 9", s.Len())
	}
	if s.Has(9) {
		t.Fatal("torn task still indexed")
	}
	// The store keeps accepting appends at the clean tail — re-executing the
	// torn task re-records it.
	if err := s.Append(9, [][]byte{[]byte("redo")}); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get(9)
	if !ok || !bytes.Equal(got[0], []byte("redo")) {
		t.Fatal("re-append after torn tail failed")
	}
}

func TestLedgerStoreSkipsCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLedgerStore(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var offs []Ref
	for id := core.TaskId(0); id < 5; id++ {
		if err := s.Append(id, [][]byte{bytes.Repeat([]byte{byte('A' + id)}, 24)}); err != nil {
			t.Fatal(err)
		}
		offs = append(offs, s.idx[id])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside task 2's record body.
	seg := filepath.Join(dir, "seg-00000001.wal")
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], offs[2].off+15); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], offs[2].off+15); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err = OpenLedgerStore(dir, Options{})
	if err != nil {
		t.Fatalf("open with corrupt record: %v", err)
	}
	defer s.Close()
	if s.Len() != 4 {
		t.Fatalf("corrupt record: %d tasks indexed, want 4", s.Len())
	}
	if s.Has(2) {
		t.Fatal("corrupt task still indexed — it would not re-execute")
	}
	// Records after the corrupt one survive.
	for _, id := range []core.TaskId{0, 1, 3, 4} {
		if !s.Has(id) {
			t.Fatalf("task %d lost alongside the corrupt record", id)
		}
	}
}
