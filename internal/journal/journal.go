// Package journal is the durable run journal behind checkpoint-free
// restart: an append-only, segmented, CRC32C-framed record log. The MPI
// controller journals every recorded task output through it (via the
// core.LedgerStore interface, see ledgerstore.go), so a killed run —
// including a full-process crash of every rank — resumes by replaying the
// journal and re-executing only the un-journaled frontier. No record is
// ever rewritten in place; correctness rests on the paper's idempotence
// contract: anything the journal lost is simply re-executed.
//
// On-disk format. A journal is a directory of segment files
// ("seg-00000001.wal", "seg-00000002.wal", …). Each segment is a sequence
// of records framed as
//
//	u32  body length (little-endian)
//	u32  CRC32C (Castagnoli) of the body
//	...  body
//
// Appends go to the highest-numbered segment; a segment exceeding
// Options.SegmentBytes is sealed and a new one started. Durability is
// governed by Options.Sync: every record, on rotation only, never (leaving
// flushes to the OS), or group commit — a background committer that
// amortizes one fsync across a bounded window of appends and publishes the
// crash-safe prefix through the Committed watermark.
//
// Crash and corruption rules, applied when a journal is opened:
//
//   - Torn tail: a trailing record whose header or body is incomplete —
//     what a crash between write and fsync leaves behind — is truncated
//     away, and appends continue at the clean tail.
//   - Implausible length: a record whose declared length exceeds
//     Options.MaxRecordBytes or the bytes remaining in the segment cannot
//     be skipped safely; the segment is truncated at that record.
//   - Corrupt record: a fully present record whose CRC32C does not match
//     is skipped (its task will re-execute) and scanning continues at the
//     next record.
//
// Open never fails on a damaged journal — damage only shrinks the set of
// replayable records.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncEveryRecord fsyncs after every append — a record returned from
	// Append survives an immediate process or OS crash. The default.
	SyncEveryRecord SyncPolicy = iota
	// SyncOnRotate fsyncs only when a segment is sealed (and on Sync/Close).
	// A crash may lose the records of the active segment's unsynced tail.
	SyncOnRotate
	// SyncNever leaves flushing to the OS (and to Sync/Close). Fastest;
	// a crash may lose any unflushed suffix.
	SyncNever
	// SyncGroupCommit amortizes fsyncs across a commit window: Append
	// returns as soon as the record is written, and a background committer
	// fsyncs when CommitRecords appends have accumulated or CommitInterval
	// has elapsed since the last commit, whichever comes first. The
	// Committed watermark reports how many records are crash-safe; a crash
	// loses at most one commit window, which replay re-executes.
	SyncGroupCommit
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryRecord:
		return "every-record"
	case SyncOnRotate:
		return "on-rotate"
	case SyncNever:
		return "never"
	case SyncGroupCommit:
		return "group-commit"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures a Log. The zero value selects the documented defaults.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would grow the
	// active segment past it seals the segment first. Zero selects 4 MiB.
	SegmentBytes int
	// MaxRecordBytes bounds a single record body; larger appends fail, and
	// a scanned record declaring more is treated as tail corruption. Zero
	// selects 256 MiB.
	MaxRecordBytes int
	// Sync is the fsync policy. The zero value is SyncEveryRecord.
	Sync SyncPolicy
	// CommitInterval bounds how long a record appended under
	// SyncGroupCommit may wait for its fsync. Zero selects 2ms. Ignored by
	// the other policies.
	CommitInterval time.Duration
	// CommitRecords is the append count that triggers an early group
	// commit before the interval elapses. Zero selects 64. Ignored by the
	// other policies.
	CommitRecords int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 256 << 20
	}
	if o.CommitInterval <= 0 {
		o.CommitInterval = 2 * time.Millisecond
	}
	if o.CommitRecords <= 0 {
		o.CommitRecords = 64
	}
	return o
}

// recHeaderSize is the per-record framing overhead: u32 length + u32 CRC32C.
const recHeaderSize = 8

// castagnoli is the CRC32C polynomial table (the same checksum the wire
// frames use, hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord marks a record whose body does not match its CRC32C.
var ErrCorruptRecord = errors.New("journal: corrupt record")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("journal: log closed")

// Ref locates one record inside a Log: the segment ordinal, the body's byte
// offset within it, and the body length. Refs stay valid for the lifetime
// of the Log that returned them (segments are never compacted in place).
type Ref struct {
	seg int   // index into Log.segs
	off int64 // byte offset of the record body
	n   int   // body length
}

// Size returns the record's body length in bytes.
func (r Ref) Size() int { return r.n }

// segment is one on-disk file of the log.
type segment struct {
	path string
	f    *os.File
	size int64 // valid bytes (scan-truncated tail excluded)
}

// Stats describes a log's health and volume.
type Stats struct {
	// Records is the number of valid records: scanned at Open plus appended
	// since.
	Records int
	// Segments is the number of segment files.
	Segments int
	// Bytes is the total valid payload across all segments (bodies only).
	Bytes int64
	// CorruptSkipped counts records dropped at Open for CRC mismatch.
	CorruptSkipped int
	// TornBytes counts bytes truncated from segment tails at Open.
	TornBytes int64
	// Committed is the crash-safe watermark: how many of Records were
	// covered by an fsync (see Log.Committed).
	Committed int
}

// Log is an append-only segmented record log. It is safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	opt       Options
	dir       string
	segs      []*segment
	refs      []Ref // valid records in append order (scan + appends)
	stats     Stats
	dirty     bool // unsynced appends on the active segment
	closed    bool
	committed int   // records covered by an fsync (crash-safe watermark)
	syncErr   error // sticky background-commit failure (group commit only)

	// Group-commit machinery (nil under the other policies).
	commitWake chan struct{} // capacity 1: poked when CommitRecords accumulate
	commitStop chan struct{}
	commitDone chan struct{}
	stopOnce   sync.Once
}

// Open opens (or creates) the journal at dir, scanning existing segments,
// truncating torn tails and skipping corrupt records per the package rules.
// The returned log appends to the clean tail of the highest segment.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{opt: opt, dir: dir}
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := os.OpenFile(path, os.O_RDWR, 0o644)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
		seg := &segment{path: path, f: f}
		l.segs = append(l.segs, seg)
		if err := l.scanSegment(len(l.segs) - 1); err != nil {
			l.Close()
			return nil, err
		}
	}
	if len(l.segs) == 0 {
		if err := l.addSegment(); err != nil {
			l.Close()
			return nil, err
		}
	}
	l.stats.Segments = len(l.segs)
	// Records that survived the open scan are on stable storage by
	// definition — the watermark starts at the full scanned count.
	l.committed = l.stats.Records
	if opt.Sync == SyncGroupCommit {
		l.commitWake = make(chan struct{}, 1)
		l.commitStop = make(chan struct{})
		l.commitDone = make(chan struct{})
		go l.commitLoop()
	}
	return l, nil
}

// segmentNames lists dir's segment files in ordinal order.
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.wal", &n); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded ordinals sort lexically
	return names, nil
}

// scanSegment validates every record of segment i, indexes the valid ones,
// truncates the torn tail and sets the segment's logical size.
func (l *Log) scanSegment(i int) error {
	seg := l.segs[i]
	info, err := seg.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	fileSize := info.Size()
	var off int64
	var hdr [recHeaderSize]byte
	for off < fileSize {
		if fileSize-off < recHeaderSize {
			break // torn header
		}
		if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
			break
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > int64(l.opt.MaxRecordBytes) || off+recHeaderSize+n > fileSize {
			break // implausible length or torn body: cannot skip safely
		}
		body := make([]byte, n)
		if _, err := seg.f.ReadAt(body, off+recHeaderSize); err != nil {
			break
		}
		if crc32.Checksum(body, castagnoli) == want {
			l.refs = append(l.refs, Ref{seg: i, off: off + recHeaderSize, n: int(n)})
			l.stats.Records++
			l.stats.Bytes += n
		} else {
			l.stats.CorruptSkipped++
		}
		off += recHeaderSize + n
	}
	if off < fileSize {
		l.stats.TornBytes += fileSize - off
		if err := seg.f.Truncate(off); err != nil {
			return fmt.Errorf("journal: truncating torn tail of %s: %w", seg.path, err)
		}
	}
	seg.size = off
	return nil
}

// addSegment seals nothing and starts segment len(segs)+1.
func (l *Log) addSegment() error {
	path := filepath.Join(l.dir, fmt.Sprintf("seg-%08d.wal", len(l.segs)+1))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.segs = append(l.segs, &segment{path: path, f: f})
	l.stats.Segments = len(l.segs)
	syncDir(l.dir) // make the new file name durable
	return nil
}

// Append frames body with its length and CRC32C and appends it to the
// active segment, rotating first when the segment is full, then fsyncs per
// the sync policy. Under SyncGroupCommit it returns as soon as the record
// is written — durability arrives with the next group commit, observable
// through Committed — and surfaces any earlier background fsync failure.
// The returned Ref reads the record back. body is not retained.
func (l *Log) Append(body []byte) (Ref, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Ref{}, ErrClosed
	}
	if l.syncErr != nil {
		// A failed group commit leaves the durability of every later record
		// unknowable; refuse further appends instead of lying.
		return Ref{}, l.syncErr
	}
	if len(body) > l.opt.MaxRecordBytes {
		return Ref{}, fmt.Errorf("journal: record of %d bytes exceeds MaxRecordBytes %d", len(body), l.opt.MaxRecordBytes)
	}
	active := l.segs[len(l.segs)-1]
	if active.size > 0 && active.size+recHeaderSize+int64(len(body)) > int64(l.opt.SegmentBytes) {
		if err := l.rotateLocked(); err != nil {
			return Ref{}, err
		}
		active = l.segs[len(l.segs)-1]
	}
	// One contiguous write keeps the torn-write window to a single record.
	buf := make([]byte, recHeaderSize+len(body))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(body, castagnoli))
	copy(buf[recHeaderSize:], body)
	if _, err := active.f.WriteAt(buf, active.size); err != nil {
		return Ref{}, fmt.Errorf("journal: append: %w", err)
	}
	ref := Ref{seg: len(l.segs) - 1, off: active.size + recHeaderSize, n: len(body)}
	active.size += int64(len(buf))
	l.refs = append(l.refs, ref)
	l.stats.Records++
	l.stats.Bytes += int64(len(body))
	l.dirty = true
	switch l.opt.Sync {
	case SyncEveryRecord:
		if err := active.f.Sync(); err != nil {
			return Ref{}, fmt.Errorf("journal: fsync: %w", err)
		}
		l.dirty = false
		l.committed = l.stats.Records
	case SyncGroupCommit:
		if l.stats.Records-l.committed >= l.opt.CommitRecords {
			select {
			case l.commitWake <- struct{}{}:
			default:
			}
		}
	}
	return ref, nil
}

// commitLoop is the group committer: it fsyncs the active segment whenever
// the commit interval elapses with unsynced appends, or sooner when
// CommitRecords accumulate. An fsync failure is recorded sticky and stops
// the loop — every subsequent Append reports it.
func (l *Log) commitLoop() {
	defer close(l.commitDone)
	t := time.NewTicker(l.opt.CommitInterval)
	defer t.Stop()
	for {
		select {
		case <-l.commitStop:
			return
		case <-t.C:
		case <-l.commitWake:
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		err := l.syncLocked()
		l.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// syncLocked fsyncs the active segment if it has unsynced appends,
// advancing the committed watermark. A failure under group commit is
// recorded sticky.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.segs[len(l.segs)-1].f.Sync(); err != nil {
		err = fmt.Errorf("journal: fsync: %w", err)
		if l.opt.Sync == SyncGroupCommit {
			l.syncErr = err
		}
		return err
	}
	l.dirty = false
	l.committed = l.stats.Records
	return nil
}

// Committed returns the crash-safe watermark: the number of records (in
// append order) covered by an fsync. Everything past it is written but may
// be lost to a crash — the replay layer re-executes it. Under
// SyncEveryRecord the watermark always equals Stats().Records; under
// SyncGroupCommit it trails by at most one commit window.
func (l *Log) Committed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

// rotateLocked seals the active segment (fsyncing it unless the policy is
// SyncNever) and starts the next one.
func (l *Log) rotateLocked() error {
	active := l.segs[len(l.segs)-1]
	if l.opt.Sync != SyncNever {
		if err := active.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync on rotate: %w", err)
		}
		l.dirty = false
		l.committed = l.stats.Records
	}
	return l.addSegment()
}

// ReadAt returns the body of a previously appended or scanned record,
// re-verifying its CRC32C so latent on-disk corruption surfaces as a typed
// ErrCorruptRecord instead of poisoned payload bytes.
func (l *Log) ReadAt(ref Ref) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readAtLocked(ref)
}

func (l *Log) readAtLocked(ref Ref) ([]byte, error) {
	if l.closed {
		return nil, ErrClosed
	}
	if ref.seg < 0 || ref.seg >= len(l.segs) {
		return nil, fmt.Errorf("journal: ref names segment %d of %d", ref.seg, len(l.segs))
	}
	var hdr [recHeaderSize]byte
	seg := l.segs[ref.seg]
	if _, err := seg.f.ReadAt(hdr[:], ref.off-recHeaderSize); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	body := make([]byte, ref.n)
	if _, err := seg.f.ReadAt(body, ref.off); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: segment %d offset %d", ErrCorruptRecord, ref.seg, ref.off)
	}
	return body, nil
}

// Scan calls fn for every valid record in append order (scanned records
// first, then records appended this session). A record that fails its
// re-read CRC is skipped — the caller sees only intact bodies. fn must not
// retain body.
func (l *Log) Scan(fn func(ref Ref, body []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for _, ref := range l.refs {
		body, err := l.readAtLocked(ref)
		if errors.Is(err, ErrCorruptRecord) {
			l.stats.CorruptSkipped++
			continue
		}
		if err != nil {
			return err
		}
		if err := fn(ref, body); err != nil {
			return err
		}
	}
	return nil
}

// Sync fsyncs the active segment if it has unsynced appends, advancing the
// committed watermark. It surfaces a sticky background-commit failure.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	return l.syncLocked()
}

// stopCommitter shuts the group committer down (idempotent; no-op for the
// other policies) and waits for it to exit, so Close never races a
// background fsync.
func (l *Log) stopCommitter() {
	if l.commitStop == nil {
		return
	}
	l.stopOnce.Do(func() { close(l.commitStop) })
	<-l.commitDone
}

// Close syncs and closes every segment. The log is unusable afterwards.
func (l *Log) Close() error {
	l.stopCommitter()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	for i, seg := range l.segs {
		if seg.f == nil {
			continue
		}
		if l.dirty && i == len(l.segs)-1 {
			if err := seg.f.Sync(); err != nil && first == nil {
				first = err
			} else if err == nil {
				l.dirty = false
				l.committed = l.stats.Records
			}
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if first == nil && l.syncErr != nil {
		first = l.syncErr
	}
	return first
}

// Stats returns the log's current counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Committed = l.committed
	return s
}

// Dir returns the journal directory.
func (l *Log) Dir() string { return l.dir }

// syncDir fsyncs a directory so a freshly created file's name survives a
// crash. Best effort: not all platforms support directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
