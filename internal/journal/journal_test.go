package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen closes l and opens the same directory fresh.
func reopen(t *testing.T, l *Log, opt Options) *Log {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	nl, err := Open(l.Dir(), opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return nl
}

func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var bodies [][]byte
	err := l.Scan(func(_ Ref, body []byte) error {
		bodies = append(bodies, append([]byte(nil), body...))
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return bodies
}

func TestRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var want [][]byte
	var refs []Ref
	for i := 0; i < 100; i++ {
		body := bytes.Repeat([]byte{byte(i)}, i*7%256+1)
		ref, err := l.Append(body)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, body)
		refs = append(refs, ref)
	}
	for i, ref := range refs {
		got, err := l.ReadAt(ref)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	l = reopen(t, l, Options{})
	defer l.Close()
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("reopened scan found %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("reopened record %d mismatch", i)
		}
	}
	st := l.Stats()
	if st.Records != 100 || st.CorruptSkipped != 0 || st.TornBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 256, Sync: SyncOnRotate}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	body := bytes.Repeat([]byte{0xAB}, 100)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(body); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) < 2 {
		t.Fatalf("expected multiple segment files, got %d", len(ents))
	}
	l = reopen(t, l, opt)
	defer l.Close()
	if got := collect(t, l); len(got) != n {
		t.Fatalf("after rotation reopen: %d records, want %d", len(got), n)
	}
	// Appends continue in the highest segment after reopen.
	if _, err := l.Append(body); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l); len(got) != n+1 {
		t.Fatalf("post-reopen append lost: %d records", len(got))
	}
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, recHeaderSize, recHeaderSize + 5} {
		t.Run(fmt.Sprintf("keep%dBytes", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if _, err := l.Append([]byte{byte(i), 1, 2, 3, 4, 5, 6, 7, 8, 9}); err != nil {
					t.Fatal(err)
				}
			}
			// Simulate a crash mid-write: keep only `cut` bytes of a 4th record.
			full := l.segs[0].size
			rec := make([]byte, recHeaderSize+10)
			binary.LittleEndian.PutUint32(rec[0:4], 10)
			binary.LittleEndian.PutUint32(rec[4:8], 0xdeadbeef)
			if _, err := l.segs[0].f.WriteAt(rec[:cut], full); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			nl, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer nl.Close()
			if got := collect(t, nl); len(got) != 3 {
				t.Fatalf("torn tail: %d records, want 3", len(got))
			}
			st := nl.Stats()
			if st.TornBytes != int64(cut) {
				t.Fatalf("TornBytes = %d, want %d", st.TornBytes, cut)
			}
			// The tail is clean: new appends round-trip.
			if _, err := nl.Append([]byte("after-truncate")); err != nil {
				t.Fatal(err)
			}
			if got := collect(t, nl); len(got) != 4 || !bytes.Equal(got[3], []byte("after-truncate")) {
				t.Fatalf("append after truncate: got %d records", len(got))
			}
		})
	}
}

func TestCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var refs []Ref
	for i := 0; i < 5; i++ {
		ref, err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 16))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	// Flip a bit in the body of record 2.
	if _, err := l.segs[0].f.WriteAt([]byte{'X'}, refs[2].off+4); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	nl, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with corrupt record: %v", err)
	}
	defer nl.Close()
	got := collect(t, nl)
	if len(got) != 4 {
		t.Fatalf("corrupt skip: %d records, want 4", len(got))
	}
	for _, b := range got {
		if b[0] == 'c' {
			t.Fatal("corrupt record was returned by Scan")
		}
	}
	if st := nl.Stats(); st.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1", st.CorruptSkipped)
	}
	// Records after the corrupt one survive (skip, not truncate).
	if !bytes.Equal(got[3], bytes.Repeat([]byte{'e'}, 16)) {
		t.Fatal("record after the corrupt one was lost")
	}
}

func TestReadAtDetectsLatentCorruption(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ref, err := l.Append([]byte("precious bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.segs[0].f.WriteAt([]byte{0xFF}, ref.off); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadAt(ref); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("ReadAt on rotted record: err = %v, want ErrCorruptRecord", err)
	}
}

func TestOversizedDeclaredLengthTruncates(t *testing.T) {
	dir := t.TempDir()
	opt := Options{MaxRecordBytes: 1 << 20}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	// A header declaring 3 GiB must not cause a 3 GiB allocation or a skip
	// past the end — the segment is truncated at the bad record.
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 3<<30)
	if _, err := l.segs[0].f.WriteAt(hdr[:], l.segs[0].size); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	nl, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("open with oversized header: %v", err)
	}
	defer nl.Close()
	if got := collect(t, nl); len(got) != 1 || !bytes.Equal(got[0], []byte("good")) {
		t.Fatalf("oversized header: %d records survived", len(got))
	}
	if st := nl.Stats(); st.TornBytes != recHeaderSize {
		t.Fatalf("TornBytes = %d, want %d", st.TornBytes, recHeaderSize)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	l, err := Open(t.TempDir(), Options{MaxRecordBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, 65)); err == nil {
		t.Fatal("oversized append succeeded")
	}
	if _, err := l.Append(make([]byte, 64)); err != nil {
		t.Fatalf("boundary append failed: %v", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncEveryRecord, SyncOnRotate, SyncNever, SyncGroupCommit} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: pol, SegmentBytes: 128})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			l = reopen(t, l, Options{Sync: pol})
			defer l.Close()
			if got := collect(t, l); len(got) != 10 {
				t.Fatalf("%v: %d records after reopen, want 10", pol, len(got))
			}
		})
	}
}

func TestClosedLogErrors(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := l.Append([]byte("x"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := l.Append([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := l.ReadAt(ref); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if err := l.Scan(func(Ref, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("scan after close: %v", err)
	}
}

func TestEmptyDirAndIgnoredFiles(t *testing.T) {
	dir := t.TempDir()
	// Foreign files in the journal directory are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("fresh journal scanned %d records", len(got))
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("fresh journal has %d segments", st.Segments)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 1024, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, per = 8, 50
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				body := make([]byte, 16)
				binary.LittleEndian.PutUint64(body, uint64(w))
				binary.LittleEndian.PutUint64(body[8:], uint64(i))
				if _, err := l.Append(body); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := collect(t, l); len(got) != writers*per {
		t.Fatalf("concurrent appends: %d records, want %d", len(got), writers*per)
	}
}
