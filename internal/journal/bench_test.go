package journal

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkAppend measures the append path under each fsync policy — the
// numbers behind the journaling rows of BENCH_journal.json and the CI
// perf-smoke sweep. Group commit's value is visible here: appends return at
// write speed while a background committer amortizes the fsyncs, landing
// near the rotate/never policies instead of the per-record fsync floor.
func BenchmarkAppend(b *testing.B) {
	policies := []SyncPolicy{SyncEveryRecord, SyncGroupCommit, SyncOnRotate, SyncNever}
	body := make([]byte, 256)
	for _, p := range policies {
		b.Run(fmt.Sprintf("sync=%s", p), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Sync: p})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(body)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(body); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}

// BenchmarkGroupCommitWatermark measures the full durability round trip
// under group commit: append, then wait for the committer to advance the
// watermark past the record. A tight commit window keeps the wait bounded;
// the result approximates the durability latency a caller observing
// Committed would see.
func BenchmarkGroupCommitWatermark(b *testing.B) {
	l, err := Open(b.TempDir(), Options{
		Sync:           SyncGroupCommit,
		CommitInterval: 500 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	body := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(body); err != nil {
			b.Fatal(err)
		}
		for l.Committed() < i+1 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	b.StopTimer()
}
