// Package faultinject wraps a fabric.Transport with deterministic fault
// injection for testing and benchmarking the fault-tolerant execution path.
// A Plan names one rank as the victim and specifies at which outbound
// message to kill it, plus optional delivery delays and duplicate delivery,
// so recovery tests reproduce exactly and can sweep the kill point across
// every message index of a workload.
//
// The wrapper injects at the Send side of the wrapped rank's transport:
// messages are counted per rank, and when the victim's count crosses
// Plan.KillAfter the transport is killed mid-batch — the prefix of the
// batch is delivered, the remainder is dropped with its payload references
// released, exactly the partial-failure shape a process crash produces.
package faultinject

import (
	"fmt"
	"sync"
	"time"

	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Plan is one deterministic fault scenario.
type Plan struct {
	// KillRank is the victim rank. Negative disables the kill fault.
	KillRank int
	// KillAfter is the number of inter-rank messages the victim sends
	// successfully before its transport dies; the (KillAfter+1)-th send is
	// the one that fails. Zero kills on the first send.
	KillAfter int
	// Delay, when positive, is slept before every inter-rank send —
	// stretching the exchange window so kills land while peers still
	// communicate.
	Delay time.Duration
	// DuplicateEvery, when positive, redelivers every k-th inter-rank
	// message a second time with the same Seq, exercising receiver-side
	// deduplication. Payloads that cannot be cloned for the wire are not
	// duplicated.
	DuplicateEvery int
}

// Transport wraps an inner transport with the faults of a Plan. Each rank
// of a run gets its own wrapper (sharing nothing), so the message counter
// is per rank and the kill point is deterministic regardless of scheduling.
type Transport struct {
	fabric.Transport
	rank int
	plan Plan

	mu     sync.Mutex
	sent   int
	killed bool
	kerr   error
}

// Wrap returns rank's view of the transport with plan's faults armed.
func Wrap(tr fabric.Transport, rank int, plan Plan) *Transport {
	return &Transport{Transport: tr, rank: rank, plan: plan}
}

// Killed reports whether this wrapper has killed its inner transport.
func (t *Transport) Killed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.killed
}

// Send applies the plan to one message.
func (t *Transport) Send(m fabric.Message) error {
	return t.SendN([]fabric.Message{m})
}

// SendN applies the plan to a batch: inter-rank messages are counted, and
// if the victim's counter crosses KillAfter inside the batch, the prefix
// before the crossing message is delivered, the inner transport is killed,
// and the remaining payload references are released.
func (t *Transport) SendN(ms []fabric.Message) error {
	if len(ms) == 0 {
		return nil
	}
	victim := t.plan.KillRank >= 0 && t.rank == t.plan.KillRank

	t.mu.Lock()
	if t.killed {
		err := t.kerr
		t.mu.Unlock()
		releaseAll(ms)
		return err
	}
	// Find the position of the message whose send crosses the kill
	// threshold, counting only inter-rank messages — local loopback
	// delivery does not touch the network a crash would sever.
	killAt := -1
	for i := range ms {
		if ms[i].From == ms[i].To {
			continue
		}
		if victim && t.sent == t.plan.KillAfter && killAt < 0 {
			killAt = i
		}
		t.sent++
	}
	dup := t.duplicatesLocked(ms, killAt)
	if killAt >= 0 {
		t.killed = true
		t.kerr = fmt.Errorf("faultinject: rank %d killed after %d message(s): %w",
			t.rank, t.plan.KillAfter, fabric.ErrPeerLost)
	}
	err := t.kerr
	t.mu.Unlock()

	if t.plan.Delay > 0 {
		time.Sleep(t.plan.Delay)
	}

	if killAt < 0 {
		if serr := t.Transport.SendN(ms); serr != nil {
			releaseAll(dup)
			return serr
		}
		if len(dup) > 0 {
			if serr := t.Transport.SendN(dup); serr != nil {
				return serr
			}
		}
		return nil
	}

	// Deliver the prefix that made it out before the crash, then sever.
	if killAt > 0 {
		if serr := t.Transport.SendN(ms[:killAt]); serr != nil {
			releaseAll(ms[killAt:])
			releaseAll(dup)
			return serr
		}
	}
	releaseAll(ms[killAt:])
	releaseAll(dup)
	kill(t.Transport)
	return err
}

// duplicatesLocked clones every k-th inter-rank message for redelivery.
// Must be called with t.mu held (it consults t.sent's pre-batch value via
// the caller's counting); duplicates keep the original Seq so receivers
// can recognize them.
func (t *Transport) duplicatesLocked(ms []fabric.Message, killAt int) []fabric.Message {
	if t.plan.DuplicateEvery <= 0 {
		return nil
	}
	var dup []fabric.Message
	n := 0
	for i := range ms {
		if ms[i].From == ms[i].To || (killAt >= 0 && i >= killAt) {
			continue
		}
		n++
		if n%t.plan.DuplicateEvery != 0 {
			continue
		}
		cp, err := ms[i].Payload.CloneForWire()
		if err != nil {
			continue
		}
		d := ms[i]
		d.Payload = cp
		dup = append(dup, d)
	}
	return dup
}

// Err surfaces the injected failure once the kill fired, else defers to the
// inner transport.
func (t *Transport) Err() error {
	t.mu.Lock()
	if t.killed {
		err := t.kerr
		t.mu.Unlock()
		return err
	}
	t.mu.Unlock()
	return t.Transport.Err()
}

// LostPeers implements fabric.LossReporter: a killed wrapper reports its
// own rank as lost (the authoritative self-report the recovery coordinator
// trusts), merged with whatever the inner transport observed.
func (t *Transport) LostPeers() []int {
	var lost []int
	t.mu.Lock()
	if t.killed {
		lost = append(lost, t.rank)
	}
	t.mu.Unlock()
	if lr, ok := t.Transport.(fabric.LossReporter); ok {
		for _, r := range lr.LostPeers() {
			if len(lost) == 0 || lost[0] != r {
				lost = append(lost, r)
			}
		}
	}
	return lost
}

func releaseAll(ms []fabric.Message) {
	for i := range ms {
		ms[i].Payload.Release()
	}
}

// kill severs the inner transport the hardest way it supports: Kill when
// offered (the TCP fabric's abrupt teardown), otherwise Cancel.
func kill(tr fabric.Transport) {
	if k, ok := tr.(interface{ Kill() }); ok {
		k.Kill()
		return
	}
	tr.Cancel()
}

var _ fabric.Transport = (*Transport)(nil)
var _ fabric.LossReporter = (*Transport)(nil)
