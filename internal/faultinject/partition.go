package faultinject

import (
	"net"
	"sync"
	"time"
)

// Network-partition and slow-peer injection: net.Conn wrappers plugged into
// wire.Options.WrapConn that model the failure modes a membership protocol
// must not misread — a link that drops traffic in ONE direction (asymmetric
// partition), a link that flaps (partitioned, then healed), and a peer that
// is alive but slow. None of these are process death; recovery that treats
// them as death turns one bad link into an epoch storm.

// PartitionLink returns a WrapConn-shaped hook that blackholes every write
// from rank src to rank dst, forever, while leaving the reverse direction
// intact — an asymmetric partition. src still believes its writes land
// (the syscall "succeeds"), so only dst's heartbeat timeout can notice.
func PartitionLink(src, dst int) func(localRank, peerRank int, c net.Conn) net.Conn {
	return FlappingLink(src, dst, 0)
}

// FlappingLink returns a WrapConn-shaped hook for a link that heals: writes
// from src to dst are blackholed until healAfter has elapsed since the
// connection was wrapped, then pass through untouched. healAfter <= 0 never
// heals (a permanent asymmetric partition). A heal interval longer than the
// heartbeat timeout exercises the "partitioned but alive" classification: a
// correct recovery bumps the epoch at most once for the flap instead of
// evicting the silent rank on every beat.
func FlappingLink(src, dst int, healAfter time.Duration) func(localRank, peerRank int, c net.Conn) net.Conn {
	return func(localRank, peerRank int, c net.Conn) net.Conn {
		if localRank != src || peerRank != dst {
			return c
		}
		pc := &partitionConn{Conn: c}
		if healAfter > 0 {
			pc.healAt = time.Now().Add(healAfter)
		}
		return pc
	}
}

// partitionConn drops writes until healAt (never, when zero).
type partitionConn struct {
	net.Conn
	healAt time.Time
}

func (c *partitionConn) Write(b []byte) (int, error) {
	if c.healAt.IsZero() || time.Now().Before(c.healAt) {
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// SlowPlan describes a slow-peer delay distribution: every write from the
// afflicted rank sleeps Base plus a deterministic pseudo-random extra in
// [0, Spread), seeded by Seed — the same plan replays the same delays.
type SlowPlan struct {
	Rank   int           // rank whose egress is slowed (-1 disables)
	Base   time.Duration // fixed per-write delay
	Spread time.Duration // width of the added pseudo-random delay
	Seed   uint64        // distribution seed (0 is a valid seed)
}

// SlowLink returns a WrapConn-shaped hook applying plan to every connection
// whose local side is plan.Rank: the peer stays alive and correct, just
// late. With Base+Spread below the heartbeat timeout this models jitter the
// runtime must absorb; above it, a peer that is indistinguishable from dead
// by any failure detector.
func SlowLink(plan SlowPlan) func(localRank, peerRank int, c net.Conn) net.Conn {
	return func(localRank, peerRank int, c net.Conn) net.Conn {
		if localRank != plan.Rank {
			return c
		}
		// Decorrelate the pair's stream from the plan seed so every
		// connection of the rank sees a distinct but reproducible sequence.
		seed := plan.Seed ^ uint64(localRank+1)<<32 ^ uint64(peerRank+1)
		return &slowConn{Conn: c, base: plan.Base, spread: plan.Spread, state: seed}
	}
}

// slowConn delays each write by base + lcg(state) mod spread.
type slowConn struct {
	net.Conn
	mu     sync.Mutex
	base   time.Duration
	spread time.Duration
	state  uint64
}

func (c *slowConn) Write(b []byte) (int, error) {
	d := c.base
	if c.spread > 0 {
		c.mu.Lock()
		// Same multiplicative congruential generator the transport plan's
		// Delay jitter would use: cheap, deterministic, full period.
		c.state = c.state*6364136223846793005 + 1442695040888963407
		d += time.Duration(c.state % uint64(c.spread))
		c.mu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(b)
}
