package faultinject

import (
	"net"
	"os"
	"sync"
)

// Connection-level fault injection: net.Conn wrappers plugged into
// wire.Options.WrapConn to corrupt or stall the byte stream between two
// specific ranks, deterministically. These model the failures the frame
// CRC32C and heartbeat timeout exist to catch — a flipped bit in transit
// and a peer that is alive but wedged.

// CorruptNthWrite returns a WrapConn-shaped hook that flips one bit inside
// the n-th write (1-based) from rank src to rank dst whose size is at least
// minLen bytes. The size floor lets tests skip heartbeats and target data
// frames; byteOff selects the flipped byte within the write (clamped to the
// write's length), so tests can aim inside a frame's body rather than its
// length prefix.
func CorruptNthWrite(src, dst, n, minLen, byteOff int) func(localRank, peerRank int, c net.Conn) net.Conn {
	return func(localRank, peerRank int, c net.Conn) net.Conn {
		if localRank != src || peerRank != dst {
			return c
		}
		return &corruptConn{Conn: c, nth: n, minLen: minLen, byteOff: byteOff}
	}
}

// corruptConn flips one bit in the nth qualifying write.
type corruptConn struct {
	net.Conn
	mu      sync.Mutex
	nth     int
	minLen  int
	byteOff int
	seen    int
	fired   bool
}

func (c *corruptConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	fire := false
	if !c.fired && len(b) >= c.minLen {
		c.seen++
		if c.seen == c.nth {
			c.fired = true
			fire = true
		}
	}
	c.mu.Unlock()
	if !fire {
		return c.Conn.Write(b)
	}
	// The writer reuses arena buffers: corrupt a copy, never the caller's
	// bytes.
	off := c.byteOff
	if off >= len(b) {
		off = len(b) - 1
	}
	cp := append([]byte(nil), b...)
	cp[off] ^= 0x40
	n, err := c.Conn.Write(cp)
	if n > len(b) {
		n = len(b)
	}
	return n, err
}

// StallAfterWrites returns a WrapConn-shaped hook that silently discards
// every write from rank src to rank dst after the first n: the connection
// stays open and readable, but src goes mute — the failure mode only a
// heartbeat timeout detects.
func StallAfterWrites(src, dst, n int) func(localRank, peerRank int, c net.Conn) net.Conn {
	return func(localRank, peerRank int, c net.Conn) net.Conn {
		if localRank != src || peerRank != dst {
			return c
		}
		return &stallConn{Conn: c, budget: n}
	}
}

// stallConn blackholes writes once its budget is spent.
type stallConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (c *stallConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	mute := c.budget <= 0
	if !mute {
		c.budget--
	}
	c.mu.Unlock()
	if mute {
		// Pretend success: the sender believes the bytes left, the receiver
		// hears nothing.
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// FlipBit XORs one bit of the file at path — byte offset off, bit 0-7 —
// simulating at-rest corruption of a journal segment.
func FlipBit(path string, off int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (bit % 8)
	_, err = f.WriteAt(b[:], off)
	return err
}

// TruncateTail chops n bytes off the end of the file at path, simulating a
// crash that tore the last journal record mid-write.
func TruncateTail(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}
