package legion

import (
	"context"
	"fmt"
	"sync"

	"github.com/babelflow/babelflow-go/internal/core"
)

// IndexLaunch is the Legion index-launch controller: the top-level task
// crawls the graph to group the tasks into rounds of non-interfering tasks
// (tasks with no dependencies among each other) and executes one index
// launch per round, mapping the outputs of the previous launch to the
// inputs of the next.
//
// Neither phase barriers nor task maps are required: the parent task stages
// every subtask's inputs and outputs itself. That per-subtask preparation
// cost, borne serially by the parent, is the scaling bottleneck the paper
// measures in Figs. 2 and 3.
type IndexLaunch struct {
	opt   Options
	graph core.TaskGraph
	reg   *core.Registry

	lastMetrics Metrics
}

// NewIndexLaunch returns a Legion index-launch controller.
func NewIndexLaunch(opt Options) *IndexLaunch {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	return &IndexLaunch{opt: opt, reg: core.NewRegistry()}
}

// Initialize implements core.Controller. The task map is optional and
// ignored: index launches let the runtime distribute the tasks.
func (c *IndexLaunch) Initialize(g core.TaskGraph, _ core.TaskMap) error {
	if g == nil {
		return fmt.Errorf("legion: nil task graph")
	}
	if err := core.Validate(g); err != nil {
		return err
	}
	c.graph = g
	return nil
}

// RegisterCallback implements core.Controller.
func (c *IndexLaunch) RegisterCallback(cb core.CallbackId, fn core.Callback) error {
	if c.graph == nil {
		return core.ErrNotInitialized
	}
	return c.reg.Register(cb, fn)
}

// Metrics returns the timing breakdown of the last Run.
func (c *IndexLaunch) Metrics() Metrics { return c.lastMetrics }

// Run implements core.Controller. It acts as the top-level task.
func (c *IndexLaunch) Run(initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	return c.RunContext(context.Background(), initial)
}

// RunContext implements core.Controller. Cancellation is observed between
// index launches: the parent checks the context before preparing each round
// and refuses to launch once it is done, returning an error wrapping
// core.ErrCancelled. Subtasks already in flight run to completion — an
// index launch is an atomic unit of work for the parent.
func (c *IndexLaunch) RunContext(ctx context.Context, initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	if c.graph == nil {
		return nil, core.ErrNotInitialized
	}
	if err := c.reg.Covers(c.graph); err != nil {
		return nil, err
	}
	if err := core.CheckInitial(c.graph, initial); err != nil {
		return nil, err
	}

	// Crawl the graph into rounds of non-interfering tasks.
	rounds, err := core.Levels(c.graph)
	if err != nil {
		return nil, err
	}

	store := NewRegionStore()
	results := make(map[core.TaskId][]core.Payload)
	var resMu sync.Mutex
	met := newMetricsCollector()

	for _, round := range rounds {
		if ctx.Err() != nil {
			c.lastMetrics = met.snapshot()
			return nil, core.Cancelled(ctx)
		}
		// One index launch per round. The parent prepares every subtask's
		// region requirements serially (gathering inputs counts as staging
		// and is the parent-borne launch overhead), then the subtasks of
		// the round execute concurrently.
		met.launch()
		type launchRecord struct {
			task core.Task
			in   []core.Payload
		}
		records := make([]launchRecord, 0, len(round))
		for _, id := range round {
			t, _ := c.graph.Task(id)
			in, err := gatherInputs(c.graph, t, store, met, initial)
			if err != nil {
				return nil, err
			}
			records = append(records, launchRecord{task: t, in: in})
		}

		sem := make(chan struct{}, c.opt.Workers)
		var wg sync.WaitGroup
		outs := make([][]core.Payload, len(records))
		errs := make([]error, len(records))
		for i, rec := range records {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, rec launchRecord) {
				defer wg.Done()
				defer func() { <-sem }()
				out, cancelled, err := runCallback(c.reg, rec.task, rec.in, met)
				if err != nil {
					errs[i] = err
					return
				}
				if !cancelled && c.opt.Observer != nil {
					c.opt.Observer.TaskExecuted(rec.task.Id, core.ShardId(i%c.opt.Workers), rec.task.Callback)
				}
				outs[i] = out
			}(i, rec)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				c.lastMetrics = met.snapshot()
				return nil, err
			}
		}
		// The parent maps the launch's outputs into regions for the next
		// round.
		for i, rec := range records {
			if err := stageOutputs(rec.task, outs[i], store, met, results, &resMu); err != nil {
				return nil, err
			}
		}
	}
	// All rounds are complete and consumers hold copies of region data:
	// return the staging buffers to the wire-buffer arena.
	store.Release()

	c.lastMetrics = met.snapshot()
	return results, nil
}

var _ core.Controller = (*IndexLaunch)(nil)
