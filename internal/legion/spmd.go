package legion

import (
	"context"
	"fmt"
	"sync"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Options configures the Legion controllers.
type Options struct {
	// Workers bounds the concurrency of an index launch (IndexLaunch
	// controller only); zero selects 4. The SPMD controller's concurrency
	// is the shard count of its task map.
	Workers int
	// Observer, when non-nil, receives a notification per executed task.
	Observer core.Observer
}

// SPMD is the Legion SPMD controller: one long-running shard task per task
// map shard, started together with a must-parallelism launcher; shards
// synchronize exclusively through the phase barriers of the region store.
type SPMD struct {
	opt   Options
	graph core.TaskGraph
	tmap  core.TaskMap
	reg   *core.Registry

	lastMetrics Metrics
}

// Metrics reports where a Legion run spent its time, matching the series of
// Fig. 3: task execution (compute), staging payloads into and out of
// regions, and the number of launcher invocations.
type Metrics struct {
	// ComputeNS is the total nanoseconds spent inside task callbacks,
	// summed over tasks.
	ComputeNS int64
	// StagingNS is the total nanoseconds spent serializing payloads into
	// regions and materializing them back.
	StagingNS int64
	// Launches counts launcher invocations: single-task launches for SPMD,
	// index launches (one per round) for IndexLaunch.
	Launches int64
	// Tasks counts executed tasks.
	Tasks int64
}

// NewSPMD returns a Legion SPMD controller.
func NewSPMD(opt Options) *SPMD {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	return &SPMD{opt: opt, reg: core.NewRegistry()}
}

// Initialize implements core.Controller. Like the MPI controller, the SPMD
// controller makes use of the task map: shards are conceptually similar to
// the MPI rank assignment.
func (c *SPMD) Initialize(g core.TaskGraph, m core.TaskMap) error {
	if g == nil {
		return fmt.Errorf("legion: nil task graph")
	}
	if m == nil {
		return fmt.Errorf("legion: the SPMD controller requires a task map")
	}
	if err := core.Validate(g); err != nil {
		return err
	}
	if err := core.ValidateMap(g, m); err != nil {
		return err
	}
	c.graph, c.tmap = g, m
	return nil
}

// RegisterCallback implements core.Controller.
func (c *SPMD) RegisterCallback(cb core.CallbackId, fn core.Callback) error {
	if c.graph == nil {
		return core.ErrNotInitialized
	}
	return c.reg.Register(cb, fn)
}

// Metrics returns the timing breakdown of the last Run.
func (c *SPMD) Metrics() Metrics { return c.lastMetrics }

// Run implements core.Controller.
func (c *SPMD) Run(initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	return c.RunContext(context.Background(), initial)
}

// RunContext implements core.Controller: a finished context cancels the
// region store, releasing every blocked phase barrier so the shard tasks
// unwind, and the returned error wraps core.ErrCancelled.
func (c *SPMD) RunContext(ctx context.Context, initial map[core.TaskId][]core.Payload) (map[core.TaskId][]core.Payload, error) {
	if c.graph == nil {
		return nil, core.ErrNotInitialized
	}
	if err := c.reg.Covers(c.graph); err != nil {
		return nil, err
	}
	if err := core.CheckInitial(c.graph, initial); err != nil {
		return nil, err
	}

	store := NewRegionStore()
	results := make(map[core.TaskId][]core.Payload)
	var resMu sync.Mutex
	met := newMetricsCollector()

	var firstErr error
	var errMu sync.Mutex
	abort := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		store.Cancel()
	}

	// Global level order; each shard walks its local tasks in this order,
	// which guarantees progress (see shard scheduling argument below).
	levels, err := core.Levels(c.graph)
	if err != nil {
		return nil, err
	}
	order := make(map[core.TaskId]int, c.graph.Size())
	pos := 0
	for _, round := range levels {
		for _, id := range round {
			order[id] = pos
			pos++
		}
	}

	stopc := make(chan struct{})
	defer close(stopc)
	go func() {
		select {
		case <-ctx.Done():
			abort(core.Cancelled(ctx))
		case <-stopc:
		}
	}()

	// Must-parallelism launch: one shard task per shard, all running
	// concurrently without runtime synchronization between them.
	var wg sync.WaitGroup
	for s := 0; s < c.tmap.ShardCount(); s++ {
		wg.Add(1)
		go func(shard core.ShardId) {
			defer wg.Done()
			if err := c.runShard(shard, order, store, met, initial, results, &resMu); err != nil {
				abort(err)
			}
		}(core.ShardId(s))
	}
	wg.Wait()
	// Every shard has joined, so no region reader remains: return the
	// staging buffers to the wire-buffer arena.
	store.Release()

	c.lastMetrics = met.snapshot()
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runShard is the long-running per-shard task. It schedules its assigned
// tasks with single-task launchers in ascending global level order; inputs
// are satisfied through region waits (phase barriers). Because every shard
// respects the level order, the blocked task of minimal level always has
// all its producers already executed or executing, so the schedule cannot
// deadlock.
func (c *SPMD) runShard(shard core.ShardId, order map[core.TaskId]int, store *RegionStore, met *metricsCollector, initial map[core.TaskId][]core.Payload, results map[core.TaskId][]core.Payload, resMu *sync.Mutex) error {
	local, err := core.LocalGraph(c.graph, c.tmap, shard)
	if err != nil {
		return err
	}
	sortTasksBy(local, order)

	for _, t := range local {
		// Single task launcher: gather region requirements, wait for them,
		// execute, stage the outputs.
		met.launch()
		in, err := c.gatherInputs(t, store, met, initial)
		if err != nil {
			return err
		}
		out, cancelled, err := runCallback(c.reg, t, in, met)
		if err != nil {
			return err
		}
		if !cancelled && c.opt.Observer != nil {
			c.opt.Observer.TaskExecuted(t.Id, shard, t.Callback)
		}
		if err := stageOutputs(t, out, store, met, results, resMu); err != nil {
			return err
		}
	}
	return nil
}

// gatherInputs assembles a task's input payloads: external slots from the
// initial inputs, everything else from the region store.
func (c *SPMD) gatherInputs(t core.Task, store *RegionStore, met *metricsCollector, initial map[core.TaskId][]core.Payload) ([]core.Payload, error) {
	return gatherInputs(c.graph, t, store, met, initial)
}

func sortTasksBy(tasks []core.Task, order map[core.TaskId]int) {
	for i := 1; i < len(tasks); i++ {
		for j := i; j > 0 && order[tasks[j].Id] < order[tasks[j-1].Id]; j-- {
			tasks[j], tasks[j-1] = tasks[j-1], tasks[j]
		}
	}
}

var _ core.Controller = (*SPMD)(nil)
