package legion

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

func u64(v uint64) core.Payload {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return core.Buffer(b)
}

func getU64(p core.Payload) uint64 { return binary.LittleEndian.Uint64(p.Data) }

func sumCB(slots int) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var sum uint64
		for _, p := range in {
			sum += getU64(p)
		}
		out := make([]core.Payload, slots)
		for i := range out {
			out[i] = u64(sum)
		}
		return out, nil
	}
}

// controllers builds all Legion variants for a graph.
func controllers(g core.TaskGraph, shards int, opt Options) map[string]core.Controller {
	m := core.NewModuloMap(shards, g.Size())
	spmd := NewSPMD(opt)
	spmd.Initialize(g, m)
	il := NewIndexLaunch(opt)
	il.Initialize(g, nil)
	return map[string]core.Controller{"spmd": spmd, "indexlaunch": il}
}

func runAll(t *testing.T, g core.TaskGraph, shards int, reg map[core.CallbackId]core.Callback, initial map[core.TaskId][]core.Payload) {
	t.Helper()
	ser := core.NewSerial()
	if err := ser.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	for cb, fn := range reg {
		ser.RegisterCallback(cb, fn)
	}
	want, err := ser.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range controllers(g, shards, Options{}) {
		t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
			for cb, fn := range reg {
				if err := c.RegisterCallback(cb, fn); err != nil {
					t.Fatal(err)
				}
			}
			got, err := c.Run(initial)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("sink count: got %d, want %d", len(got), len(want))
			}
			for id, ws := range want {
				gs := got[id]
				if len(gs) != len(ws) {
					t.Fatalf("task %d: %d sinks, want %d", id, len(gs), len(ws))
				}
				for i := range ws {
					wb, _ := ws[i].Wire()
					gb, _ := gs[i].Wire()
					if !bytes.Equal(wb, gb) {
						t.Errorf("task %d sink %d: got %v, want %v", id, i, gb, wb)
					}
				}
			}
		})
	}
}

func reductionSetup(leafs, k int) (*graphs.Reduction, map[core.CallbackId]core.Callback, map[core.TaskId][]core.Payload) {
	g, _ := graphs.NewReduction(leafs, k)
	reg := map[core.CallbackId]core.Callback{
		graphs.ReduceLeafCB: sumCB(1),
		graphs.ReduceMidCB:  sumCB(1),
		graphs.ReduceRootCB: sumCB(1),
	}
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.LeafIds() {
		initial[id] = []core.Payload{u64(uint64(i + 2))}
	}
	return g, reg, initial
}

func TestLegionMatchesSerialOnReduction(t *testing.T) {
	g, reg, initial := reductionSetup(16, 2)
	for _, shards := range []int{1, 3, 8, 64} {
		runAll(t, g, shards, reg, initial)
	}
}

func TestLegionMatchesSerialOnBinarySwap(t *testing.T) {
	g, _ := graphs.NewBinarySwap(8)
	split := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var sum uint64
		for _, p := range in {
			sum += getU64(p)
		}
		return []core.Payload{u64(sum * 3), u64(sum + 7)}, nil
	}
	reg := map[core.CallbackId]core.Callback{
		graphs.SwapLeafCB: split,
		graphs.SwapMidCB:  split,
		graphs.SwapRootCB: sumCB(1),
	}
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.LeafIds() {
		initial[id] = []core.Payload{u64(uint64(i))}
	}
	for _, shards := range []int{2, 8} {
		runAll(t, g, shards, reg, initial)
	}
}

func TestLegionMatchesSerialOnKWayMerge(t *testing.T) {
	g, _ := graphs.NewKWayMerge(16, 4)
	reg := make(map[core.CallbackId]core.Callback)
	for _, cb := range g.Callbacks() {
		reg[cb] = sumCB(1)
	}
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range g.UpLeafIds() {
		initial[id] = []core.Payload{u64(uint64(i * i))}
	}
	runAll(t, g, 4, reg, initial)
}

func TestLegionMetricsPopulated(t *testing.T) {
	g, reg, initial := reductionSetup(16, 2)
	for name, c := range controllers(g, 4, Options{}) {
		for cb, fn := range reg {
			c.RegisterCallback(cb, fn)
		}
		if _, err := c.Run(initial); err != nil {
			t.Fatal(err)
		}
		var m Metrics
		switch cc := c.(type) {
		case *SPMD:
			m = cc.Metrics()
		case *IndexLaunch:
			m = cc.Metrics()
		}
		if m.Tasks != int64(g.Size()) {
			t.Errorf("%s: tasks = %d, want %d", name, m.Tasks, g.Size())
		}
		if m.Launches == 0 {
			t.Errorf("%s: no launches recorded", name)
		}
		if m.StagingNS < 0 || m.ComputeNS <= 0 {
			t.Errorf("%s: metrics = %+v", name, m)
		}
	}
	// SPMD uses single-task launchers: one per task. IndexLaunch uses one
	// launch per round: a 31-task binary reduction has 5 levels.
	spmd := NewSPMD(Options{})
	spmd.Initialize(g, core.NewModuloMap(4, g.Size()))
	for cb, fn := range reg {
		spmd.RegisterCallback(cb, fn)
	}
	spmd.Run(initial)
	if spmd.Metrics().Launches != int64(g.Size()) {
		t.Errorf("SPMD launches = %d, want %d", spmd.Metrics().Launches, g.Size())
	}
	il := NewIndexLaunch(Options{})
	il.Initialize(g, nil)
	for cb, fn := range reg {
		il.RegisterCallback(cb, fn)
	}
	il.Run(initial)
	if il.Metrics().Launches != 5 {
		t.Errorf("IndexLaunch launches = %d, want 5", il.Metrics().Launches)
	}
}

func TestLegionObserverSeesEachTaskOnce(t *testing.T) {
	g, reg, initial := reductionSetup(8, 2)
	for name := range map[string]bool{"spmd": true, "indexlaunch": true} {
		log := core.NewExecutionLog()
		var c core.Controller
		if name == "spmd" {
			s := NewSPMD(Options{Observer: log})
			s.Initialize(g, core.NewModuloMap(3, g.Size()))
			c = s
		} else {
			i := NewIndexLaunch(Options{Observer: log})
			i.Initialize(g, nil)
			c = i
		}
		for cb, fn := range reg {
			c.RegisterCallback(cb, fn)
		}
		if _, err := c.Run(initial); err != nil {
			t.Fatal(err)
		}
		if log.Len() != g.Size() {
			t.Errorf("%s: observer saw %d, want %d", name, log.Len(), g.Size())
		}
	}
}

func TestLegionErrorPropagation(t *testing.T) {
	g, reg, initial := reductionSetup(8, 2)
	boom := errors.New("boom")
	reg[graphs.ReduceMidCB] = func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		return nil, boom
	}
	for name, c := range controllers(g, 4, Options{}) {
		for cb, fn := range reg {
			c.RegisterCallback(cb, fn)
		}
		if _, err := c.Run(initial); !errors.Is(err, boom) {
			t.Errorf("%s: err = %v, want boom", name, err)
		}
	}
}

func TestLegionInitializeErrors(t *testing.T) {
	g, _, _ := reductionSetup(4, 2)
	s := NewSPMD(Options{})
	if err := s.Initialize(nil, core.NewModuloMap(1, 1)); err == nil {
		t.Error("nil graph should fail")
	}
	if err := s.Initialize(g, nil); err == nil {
		t.Error("SPMD without a task map should fail")
	}
	if _, err := s.Run(nil); !errors.Is(err, core.ErrNotInitialized) {
		t.Errorf("Run before init = %v", err)
	}
	il := NewIndexLaunch(Options{})
	if err := il.Initialize(g, nil); err != nil {
		t.Errorf("IndexLaunch without a task map should work: %v", err)
	}
	if err := il.RegisterCallback(0, sumCB(1)); err != nil {
		t.Error(err)
	}
}

func TestLegionOpaqueObjectFailsStaging(t *testing.T) {
	// Legion always maps payloads to physical regions through
	// serialization, so even a same-shard opaque object fails.
	g := core.NewExplicitGraph([]core.Task{
		{Id: 0, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{1}}},
		{Id: 1, Callback: 1, Incoming: []core.TaskId{0}, Outgoing: [][]core.TaskId{{}}},
	})
	s := NewSPMD(Options{})
	s.Initialize(g, core.NewModuloMap(1, 2))
	s.RegisterCallback(0, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		return []core.Payload{core.Object(struct{ x int }{1})}, nil
	})
	s.RegisterCallback(1, sumCB(1))
	if _, err := s.Run(map[core.TaskId][]core.Payload{0: {core.Buffer(nil)}}); !errors.Is(err, core.ErrNotSerializable) {
		t.Errorf("staging opaque payload: err = %v", err)
	}
}

func TestPhaseBarrier(t *testing.T) {
	b := NewPhaseBarrier()
	done := make(chan error, 1)
	go func() { done <- b.Wait() }()
	b.Arrive()
	if err := <-done; err != nil {
		t.Errorf("Wait after Arrive = %v", err)
	}
	// Wait after Arrive returns immediately.
	if err := b.Wait(); err != nil {
		t.Errorf("second Wait = %v", err)
	}
	// Cancelled barrier returns ErrCancelled.
	b2 := NewPhaseBarrier()
	b2.Cancel()
	if err := b2.Wait(); !errors.Is(err, ErrCancelled) {
		t.Errorf("cancelled Wait = %v", err)
	}
}

func TestRegionStorePutGet(t *testing.T) {
	s := NewRegionStore()
	id := RegionId{Producer: 3, Slot: 1}
	if err := s.Put(id, u64(9)); err != nil {
		t.Fatal(err)
	}
	p, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if getU64(p) != 9 {
		t.Errorf("Get = %d", getU64(p))
	}
	// Each Get returns an owned copy.
	p.Data[0] = 0xFF
	p2, _ := s.Get(id)
	if getU64(p2) == getU64(p) {
		t.Error("Get must return independent copies")
	}
	// Cancel unblocks future gets on unseen regions.
	s.Cancel()
	if _, err := s.Get(RegionId{Producer: 99}); !errors.Is(err, ErrCancelled) {
		t.Errorf("Get after Cancel = %v", err)
	}
}

func TestProducerSlotOccurrences(t *testing.T) {
	p := core.Task{
		Id:       0,
		Outgoing: [][]core.TaskId{{5}, {6}, {5}},
	}
	if s, err := producerSlot(p, 5, 0); err != nil || s != 0 {
		t.Errorf("occ 0: slot=%d err=%v", s, err)
	}
	if s, err := producerSlot(p, 5, 1); err != nil || s != 2 {
		t.Errorf("occ 1: slot=%d err=%v", s, err)
	}
	if _, err := producerSlot(p, 5, 2); err == nil {
		t.Error("occ 2 should fail")
	}
	if _, err := producerSlot(p, 7, 0); err == nil {
		t.Error("unknown consumer should fail")
	}
}

func TestLegionRecoversCallbackPanic(t *testing.T) {
	g, reg, initial := reductionSetup(8, 2)
	reg[graphs.ReduceMidCB] = func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		panic("region panic")
	}
	for name, c := range controllers(g, 4, Options{}) {
		for cb, fn := range reg {
			c.RegisterCallback(cb, fn)
		}
		_, err := c.Run(initial)
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("%s: Run = %v, want panic converted to error", name, err)
		}
	}
}

// TestSPMDAdversarialPlacementNoDeadlock pins interleaved pieces of two
// parallel chains onto opposite shards — the classic shape that deadlocks
// schedulers executing tasks in placement order. The SPMD controller's
// global level ordering must drain it.
func TestSPMDAdversarialPlacementNoDeadlock(t *testing.T) {
	// Chains A: 0->1->2->3 and B: 10->11->12->13.
	var tasks []core.Task
	for _, base := range []core.TaskId{0, 10} {
		for i := core.TaskId(0); i < 4; i++ {
			task := core.Task{Id: base + i, Callback: 0}
			if i == 0 {
				task.Incoming = []core.TaskId{core.ExternalInput}
			} else {
				task.Incoming = []core.TaskId{base + i - 1}
			}
			if i == 3 {
				task.Outgoing = [][]core.TaskId{{}}
			} else {
				task.Outgoing = [][]core.TaskId{{base + i + 1}}
			}
			tasks = append(tasks, task)
		}
	}
	g := core.NewExplicitGraph(tasks)
	// Shard 0 holds {A0, A2, B1, B3}; shard 1 holds {B0, B2, A1, A3}:
	// every chain ping-pongs between the shards.
	onShard0 := map[core.TaskId]bool{0: true, 2: true, 11: true, 13: true}
	m := core.NewFuncMap(2, g.TaskIds(), func(id core.TaskId) core.ShardId {
		if onShard0[id] {
			return 0
		}
		return 1
	})
	s := NewSPMD(Options{})
	if err := s.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	s.RegisterCallback(0, sumCB(1))
	done := make(chan error, 1)
	go func() {
		_, err := s.Run(map[core.TaskId][]core.Payload{0: {u64(1)}, 10: {u64(2)}})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SPMD deadlocked on adversarial placement")
	}
}
