// Package legion implements the Legion runtime controllers of the paper
// (§IV-C). Legion is a data-centric programming system: dependencies are
// expressed through logical regions holding the meta-information of a piece
// of data, and tasks declare region requirements for their inputs and
// outputs. The controller maps Payloads to physical regions (and back)
// using the payloads' serialization routines.
//
// Two controllers are provided, matching the paper's comparison:
//
//   - SPMD: one long-running task per shard, started simultaneously with a
//     must-parallelism launcher; each shard schedules its assigned part of
//     the task graph with single-task launchers and synchronizes with other
//     shards through phase barriers — a lightweight producer/consumer
//     mechanism with no global synchronization.
//   - IndexLaunch: the top-level task crawls the graph into rounds of
//     non-interfering tasks and executes one index launch per round,
//     mapping the outputs of the previous launch to the inputs of the next.
//     The cost of preparing and scheduling subtasks is borne by the parent
//     task and is roughly proportional to the number of subtasks — the
//     effect behind Figs. 2 and 3.
package legion

import (
	"errors"
	"fmt"
	"sync"

	"github.com/babelflow/babelflow-go/internal/core"
)

// ErrCancelled is returned by region waits after a run aborts.
var ErrCancelled = errors.New("legion: run cancelled")

// RegionId names a logical region: the data produced on one output slot of
// one task.
type RegionId struct {
	Producer core.TaskId
	Slot     int
}

// String renders the region id for diagnostics.
func (r RegionId) String() string { return fmt.Sprintf("region(%d.%d)", r.Producer, r.Slot) }

// PhaseBarrier is the lightweight producer-consumer synchronization
// primitive of Legion SPMD: a set of producers notify a set of consumers
// when data is ready. There is no global synchronization involved — each
// barrier involves only the tasks that touch its region.
type PhaseBarrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	arrived   bool
	cancelled bool
}

// NewPhaseBarrier returns an un-triggered barrier.
func NewPhaseBarrier() *PhaseBarrier {
	b := &PhaseBarrier{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Arrive triggers the barrier, releasing current and future waiters.
func (b *PhaseBarrier) Arrive() {
	b.mu.Lock()
	b.arrived = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Cancel aborts the barrier: waiters return ErrCancelled.
func (b *PhaseBarrier) Cancel() {
	b.mu.Lock()
	b.cancelled = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Wait blocks until the barrier triggers or is cancelled.
func (b *PhaseBarrier) Wait() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.arrived && !b.cancelled {
		b.cond.Wait()
	}
	if b.cancelled && !b.arrived {
		return ErrCancelled
	}
	return nil
}

// RegionStore holds the physical regions of a run. Writing a region stages
// the payload's serialized bytes into it and arrives at the region's phase
// barrier; reading waits on the barrier and returns an owned copy of the
// bytes, so every consumer holds independent data.
type RegionStore struct {
	mu        sync.Mutex
	regions   map[RegionId]*physicalRegion
	cancelled bool
}

type physicalRegion struct {
	barrier *PhaseBarrier
	data    []byte
}

// NewRegionStore returns an empty store.
func NewRegionStore() *RegionStore {
	return &RegionStore{regions: make(map[RegionId]*physicalRegion)}
}

func (s *RegionStore) region(id RegionId) *physicalRegion {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.regions[id]
	if !ok {
		r = &physicalRegion{barrier: NewPhaseBarrier()}
		if s.cancelled {
			r.barrier.Cancel()
		}
		s.regions[id] = r
	}
	return r
}

// Put stages a payload into the region: the payload is serialized (Legion
// maps payloads to physical regions through the user's serialization
// routines) and the region's phase barrier triggers. Staging buffers come
// from the core wire-buffer arena; Release returns them when the run is
// over.
func (s *RegionStore) Put(id RegionId, p core.Payload) error {
	wire, err := p.Wire()
	if err != nil {
		return fmt.Errorf("legion: staging %v: %w", id, err)
	}
	r := s.region(id)
	r.data = core.GrabBuffer(len(wire))
	copy(r.data, wire)
	r.barrier.Arrive()
	return nil
}

// Get waits for the region's phase barrier and returns an owned copy of the
// staged bytes as a payload.
func (s *RegionStore) Get(id RegionId) (core.Payload, error) {
	r := s.region(id)
	if err := r.barrier.Wait(); err != nil {
		return core.Payload{}, fmt.Errorf("%w (waiting for %v)", err, id)
	}
	cp := make([]byte, len(r.data))
	copy(cp, r.data)
	return core.Buffer(cp), nil
}

// Release returns every staged region buffer to the wire-buffer arena. The
// controller calls it once the run is complete: consumers only ever hold
// copies of region data (Get), so no live reference can remain.
func (s *RegionStore) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.regions {
		if r.data != nil {
			core.ReleaseBuffer(r.data)
			r.data = nil
		}
	}
	s.regions = make(map[RegionId]*physicalRegion)
}

// Cancel aborts every current and future region wait.
func (s *RegionStore) Cancel() {
	s.mu.Lock()
	regions := make([]*physicalRegion, 0, len(s.regions))
	for _, r := range s.regions {
		regions = append(regions, r)
	}
	s.cancelled = true
	s.mu.Unlock()
	for _, r := range regions {
		r.barrier.Cancel()
	}
}

// producerSlot finds the output slot of producer p that feeds the occ-th
// input slot (among those naming p) of the given consumer. Producers emit
// their slots in order, so the occ-th listing of the consumer across p's
// output slots is the matching region.
func producerSlot(p core.Task, consumer core.TaskId, occ int) (int, error) {
	count := 0
	for s, cs := range p.Outgoing {
		for _, c := range cs {
			if c != consumer {
				continue
			}
			if count == occ {
				return s, nil
			}
			count++
		}
	}
	return 0, fmt.Errorf("legion: task %d does not feed consumer %d (occurrence %d)", p.Id, consumer, occ)
}
