package legion

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
)

// metricsCollector accumulates Metrics concurrently.
type metricsCollector struct {
	computeNS atomic.Int64
	stagingNS atomic.Int64
	launches  atomic.Int64
	tasks     atomic.Int64
}

func newMetricsCollector() *metricsCollector { return &metricsCollector{} }

func (m *metricsCollector) launch() { m.launches.Add(1) }

func (m *metricsCollector) snapshot() Metrics {
	return Metrics{
		ComputeNS: m.computeNS.Load(),
		StagingNS: m.stagingNS.Load(),
		Launches:  m.launches.Load(),
		Tasks:     m.tasks.Load(),
	}
}

// gatherInputs assembles a task's input payloads: external slots come from
// the initial inputs in order, internal slots from the region store (which
// waits on the producing region's phase barrier). Region reads count as
// staging time.
func gatherInputs(g core.TaskGraph, t core.Task, store *RegionStore, met *metricsCollector, initial map[core.TaskId][]core.Payload) ([]core.Payload, error) {
	in := make([]core.Payload, len(t.Incoming))
	extIdx := 0
	occ := make(map[core.TaskId]int)
	for slot, p := range t.Incoming {
		if p == core.ExternalInput {
			ext := initial[t.Id]
			if extIdx >= len(ext) {
				return nil, fmt.Errorf("legion: task %d missing external input %d", t.Id, extIdx)
			}
			in[slot] = ext[extIdx]
			extIdx++
			continue
		}
		prod, ok := g.Task(p)
		if !ok {
			return nil, fmt.Errorf("legion: task %d names unknown producer %d", t.Id, p)
		}
		ps, err := producerSlot(prod, t.Id, occ[p])
		if err != nil {
			return nil, err
		}
		occ[p]++
		start := time.Now()
		payload, err := store.Get(RegionId{Producer: p, Slot: ps})
		met.stagingNS.Add(int64(time.Since(start)))
		if err != nil {
			return nil, err
		}
		in[slot] = payload
	}
	return in, nil
}

// runCallback executes a task's callback, charging its duration to compute
// time. A dead input cancels the task: the callback is skipped (cancelled is
// true, so callers must not notify Observers) and dead tokens propagate on
// every output slot.
func runCallback(reg *core.Registry, t core.Task, in []core.Payload, met *metricsCollector) (out []core.Payload, cancelled bool, err error) {
	if out, cancelled = core.CancelDead(t, in); cancelled {
		met.tasks.Add(1)
		return out, true, nil
	}
	fn, ok := reg.Lookup(t.Callback)
	if !ok {
		return nil, false, fmt.Errorf("%w: callback %d", core.ErrUnregisteredCallback, t.Callback)
	}
	start := time.Now()
	out, err = core.SafeInvoke(fn, in, t.Id)
	met.computeNS.Add(int64(time.Since(start)))
	if err != nil {
		return nil, false, fmt.Errorf("legion: task %d (callback %d): %w", t.Id, t.Callback, err)
	}
	if len(out) != len(t.Outgoing) {
		return nil, false, fmt.Errorf("legion: task %d produced %d outputs, graph declares %d slots", t.Id, len(out), len(t.Outgoing))
	}
	met.tasks.Add(1)
	return out, false, nil
}

// stageOutputs writes a task's outputs into the region store (sink slots go
// to the result map instead). Region writes count as staging time.
func stageOutputs(t core.Task, out []core.Payload, store *RegionStore, met *metricsCollector, results map[core.TaskId][]core.Payload, resMu *sync.Mutex) error {
	for slot, consumers := range t.Outgoing {
		if len(consumers) == 0 {
			// A dead token at a sink is a deactivated branch's non-result.
			if core.IsDead(out[slot]) {
				continue
			}
			resMu.Lock()
			results[t.Id] = append(results[t.Id], out[slot])
			resMu.Unlock()
			continue
		}
		start := time.Now()
		err := store.Put(RegionId{Producer: t.Id, Slot: slot}, out[slot])
		met.stagingNS.Add(int64(time.Since(start)))
		if err != nil {
			return err
		}
	}
	return nil
}
