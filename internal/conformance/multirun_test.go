package conformance

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// The multi-run suite pins the service-mode execution shape: many graph
// instances multiplexed over ONE warm socket mesh — each rank holding a
// run demultiplexer over its resident fabric, each run executing through
// its own RunTransport views — must produce sinks byte-identical to the
// serial reference for every instance, at both socket tiers. Any
// cross-run message leak, misrouted frame or demux teardown bug flips a
// digest or wedges a run.

// warmMeshRun executes one graph instance over the resident mesh through
// fresh per-rank demux views for run id, merging the per-rank sinks.
func warmMeshRun(g core.TaskGraph, m core.TaskMap, cb core.Callback, initial map[core.TaskId][]core.Payload, demuxes []*fabric.Demux, id uint64) (map[core.TaskId][]core.Payload, error) {
	ranks := m.ShardCount()
	ctrl := mpi.New()
	if err := ctrl.Initialize(g, m); err != nil {
		return nil, err
	}
	for _, cid := range g.Callbacks() {
		if err := ctrl.RegisterCallback(cid, cb); err != nil {
			return nil, err
		}
	}
	views := make([]fabric.Transport, ranks)
	for r := 0; r < ranks; r++ {
		v, err := demuxes[r].Open(id)
		if err != nil {
			return nil, err
		}
		views[r] = v
	}
	defer func() {
		for r := 0; r < ranks; r++ {
			demuxes[r].Release(id)
		}
	}()
	parts := partitionInitial(m, initial)

	results := make([]map[core.TaskId][]core.Payload, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = ctrl.RunRank(r, views[r], parts[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("run %d rank %d: %w", id, r, err)
		}
	}
	merged := make(map[core.TaskId][]core.Payload)
	for _, res := range results {
		for tid, ps := range res {
			merged[tid] = ps
		}
	}
	return merged, nil
}

// multiRunOverTier interleaves N graph instances over one warm mesh at the
// given tier and checks every instance against its serial reference.
func multiRunOverTier(t *testing.T, tier wire.Tier) {
	const ranks, runs = 4, 8

	// Two different graph shapes interleave over the same mesh, so runs
	// also differ in message pattern, not just run id.
	shapes := []core.TaskGraph{}
	kwm, err := graphs.NewKWayMerge(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	bsw, err := graphs.NewBinarySwap(8)
	if err != nil {
		t.Fatal(err)
	}
	shapes = append(shapes, kwm, bsw)

	type instance struct {
		g    core.TaskGraph
		m    core.TaskMap
		cb   core.Callback
		want map[core.TaskId][]core.Payload
	}
	insts := make([]instance, runs)
	for i := range insts {
		g := shapes[i%len(shapes)]
		cb := mixCallback(g)
		insts[i] = instance{
			g:    g,
			m:    core.NewModuloMap(ranks, g.Size()),
			cb:   cb,
			want: serialReference(t, g, cb, externalInputsFor(g)),
		}
	}

	// One warm mesh for everything. The fingerprint pin only guards
	// mismatched binaries; the interleaved graphs share it via Epoch-style
	// trust in the run id, so connect with the first instance's print.
	fpCtrl := mpi.New()
	if err := fpCtrl.Initialize(insts[0].g, insts[0].m); err != nil {
		t.Fatal(err)
	}
	fabrics := connectWireMesh(t, ranks, fpCtrl.Fingerprint(), wire.Options{Tier: tier})
	demuxes := make([]*fabric.Demux, ranks)
	for r := range demuxes {
		demuxes[r] = fabric.NewDemux(fabrics[r], r)
	}

	got := make([]map[core.TaskId][]core.Payload, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = warmMeshRun(insts[i].g, insts[i].m, insts[i].cb, externalInputsFor(insts[i].g), demuxes, uint64(i+1))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	for i := range insts {
		assertRunMatches(t, i, insts[i].want, got[i])
	}

	// Clean teardown: demuxes first (runs are all released), then the
	// mesh, then the pumps join. Strays would mean a frame escaped its run.
	var stray uint64
	for _, d := range demuxes {
		stray += d.Stray()
		if n := d.Runs(); n != 0 {
			t.Fatalf("demux still holds %d runs after drain", n)
		}
		d.Close()
	}
	if stray != 0 {
		t.Fatalf("%d frames routed to no run", stray)
	}
	var shut sync.WaitGroup
	for _, f := range fabrics {
		shut.Add(1)
		go func(f *wire.Fabric) {
			defer shut.Done()
			f.Shutdown(30 * time.Second)
		}(f)
	}
	shut.Wait()
	for _, d := range demuxes {
		d.Wait()
	}
}

// assertRunMatches compares one instance's merged sinks byte for byte.
func assertRunMatches(t *testing.T, run int, want, got map[core.TaskId][]core.Payload) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("instance %d: %d sinks, want %d", run, len(got), len(want))
	}
	for id, ws := range want {
		gs := got[id]
		if len(gs) != len(ws) {
			t.Fatalf("instance %d task %d: %d payloads, want %d", run, id, len(gs), len(ws))
		}
		for i := range ws {
			wb, _ := ws[i].Wire()
			gb, _ := gs[i].Wire()
			if !bytes.Equal(wb, gb) {
				t.Fatalf("instance %d task %d payload %d: %d bytes vs %d, not byte-identical", run, id, i, len(gb), len(wb))
			}
		}
	}
}

func TestMultiRunWarmMeshTCP(t *testing.T) {
	multiRunOverTier(t, wire.TierTCP)
}

func TestMultiRunWarmMeshUnix(t *testing.T) {
	multiRunOverTier(t, wire.TierUnix)
}

func TestMultiRunWarmMeshShm(t *testing.T) {
	multiRunOverTier(t, wire.TierShm)
}

// TestMultiRunSequentialReuse reuses one warm mesh for many sequential
// runs — run ids strictly increasing, mailboxes built and torn down per
// run — and checks the last run is as byte-exact as the first.
func TestMultiRunSequentialReuse(t *testing.T) {
	const ranks, runs = 3, 12
	g, err := graphs.NewReduction(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewModuloMap(ranks, g.Size())
	cb := mixCallback(g)
	want := serialReference(t, g, cb, externalInputsFor(g))

	fpCtrl := mpi.New()
	if err := fpCtrl.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	fabrics := connectWireMesh(t, ranks, fpCtrl.Fingerprint(), wire.Options{Tier: wire.TierUnix})
	demuxes := make([]*fabric.Demux, ranks)
	for r := range demuxes {
		demuxes[r] = fabric.NewDemux(fabrics[r], r)
	}

	for i := 0; i < runs; i++ {
		got, err := warmMeshRun(g, m, cb, externalInputsFor(g), demuxes, uint64(i+1))
		if err != nil {
			t.Fatalf("sequential run %d: %v", i, err)
		}
		assertRunMatches(t, i, want, got)
	}

	for _, d := range demuxes {
		d.Close()
	}
	var shut sync.WaitGroup
	for _, f := range fabrics {
		shut.Add(1)
		go func(f *wire.Fabric) {
			defer shut.Done()
			f.Shutdown(30 * time.Second)
		}(f)
	}
	shut.Wait()
	for _, d := range demuxes {
		d.Wait()
	}
}
