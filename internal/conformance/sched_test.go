package conformance

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mergetree"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/register"
	"github.com/babelflow/babelflow-go/internal/render"
)

// schedWorkload is one of the paper's figure use cases, packaged for the
// scheduler determinism suite: a real graph with real analysis callbacks
// and real synthetic inputs.
type schedWorkload struct {
	name     string
	graph    core.TaskGraph
	register func(c core.CallbackRegistrar) error
	// initial synthesizes fresh external inputs per run: callbacks own
	// their inputs and may mutate them, so runs must not share payloads.
	initial func() map[core.TaskId][]core.Payload
}

// figureWorkloads builds the three use cases at test scale.
func figureWorkloads(t *testing.T) []schedWorkload {
	t.Helper()
	var out []schedWorkload

	{ // Merge tree (Fig. 2): k-way reduction with segmentation broadcast back.
		const n, blocks = 16, 8
		field := data.SyntheticHCCI(n, n, n, 8, 2026)
		decomp, err := data.NewDecomposition(n, n, n, 2, 2, blocks/4)
		if err != nil {
			t.Fatal(err)
		}
		g, err := mergetree.NewGraph(blocks, 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mergetree.Config{Decomp: decomp, Threshold: 0.3}
		out = append(out, schedWorkload{
			name:  "mergetree",
			graph: g,
			register: func(c core.CallbackRegistrar) error {
				return cfg.Register(c, g)
			},
			initial: func() map[core.TaskId][]core.Payload {
				initial, err := cfg.InitialInputs(field, g)
				if err != nil {
					t.Fatal(err)
				}
				return initial
			},
		})
	}

	{ // Volume rendering (Fig. 9): binary compositing reduction.
		const n, blocks = 16, 8
		field := data.SyntheticHCCI(n, n, n, 6, 7)
		decomp, err := data.NewDecomposition(n, n, n, 2, 2, blocks/4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := render.Config{
			Decomp: decomp,
			Camera: render.Camera{Width: n, Height: n},
			TF:     render.TransferFunction{Lo: 0.25, Hi: 1.5, Opacity: 0.4},
		}
		g, err := graphs.NewReduction(blocks, 2)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, schedWorkload{
			name:  "render",
			graph: g,
			register: func(c core.CallbackRegistrar) error {
				return cfg.RegisterReduction(c, g)
			},
			initial: func() map[core.TaskId][]core.Payload {
				initial, err := cfg.InitialInputs(field, g.LeafIds())
				if err != nil {
					t.Fatal(err)
				}
				return initial
			},
		})
	}

	{ // Image registration (Fig. 10): 2D neighbor exchange.
		cfg := register.Config{GridW: 3, GridH: 3, Tile: 24, Overlap: 0.2, Jitter: 2}
		tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 5)
		g, err := cfg.Graph()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, schedWorkload{
			name:  "register",
			graph: g,
			register: func(c core.CallbackRegistrar) error {
				return cfg.Register(c, g)
			},
			initial: func() map[core.TaskId][]core.Payload {
				initial, err := cfg.InitialInputs(g, tiles)
				if err != nil {
					t.Fatal(err)
				}
				return initial
			},
		})
	}
	return out
}

// sinkDigest reduces a run's sink outputs to one hash, ordered by task id
// and slot so map iteration order cannot matter.
func sinkDigest(t *testing.T, out map[core.TaskId][]core.Payload) [sha256.Size]byte {
	t.Helper()
	ids := make([]core.TaskId, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := sha256.New()
	var b [8]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint64(b[:], uint64(id))
		h.Write(b[:])
		for slot, p := range out[id] {
			w, err := p.Wire()
			if err != nil {
				t.Fatalf("task %d slot %d: %v", id, slot, err)
			}
			binary.LittleEndian.PutUint64(b[:], uint64(len(w)))
			h.Write(b[:])
			h.Write(w)
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// TestSchedulerDeterminism is the scheduler determinism suite: the three
// figure workloads must produce digests byte-identical to the serial
// reference at every worker budget (1, 2, GOMAXPROCS) and in every
// scheduling mode (priority, priority+no-steal, FIFO) — scheduling order
// may change timing, never outputs.
func TestSchedulerDeterminism(t *testing.T) {
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}
	modes := []struct {
		name    string
		fifo    bool
		noSteal bool
	}{
		{"priority", false, false},
		{"priority-nosteal", false, true},
		{"fifo", true, false},
	}
	for _, w := range figureWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			ser := core.NewSerial()
			if err := ser.Initialize(w.graph, nil); err != nil {
				t.Fatal(err)
			}
			if err := w.register(ser); err != nil {
				t.Fatal(err)
			}
			res, err := ser.Run(w.initial())
			if err != nil {
				t.Fatal(err)
			}
			want := sinkDigest(t, res)

			shards := 3 // uneven split: some ranks get more tasks than others
			for _, workers := range workers {
				for _, mode := range modes {
					name := fmt.Sprintf("w%d/%s", workers, mode.name)
					t.Run(name, func(t *testing.T) {
						c := mpi.New(mpi.WithWorkers(workers), mpi.WithFIFO(mode.fifo), mpi.WithNoSteal(mode.noSteal))
						if err := c.Initialize(w.graph, core.NewGraphMap(shards, w.graph)); err != nil {
							t.Fatal(err)
						}
						if err := w.register(c); err != nil {
							t.Fatal(err)
						}
						res, err := c.Run(w.initial())
						if err != nil {
							t.Fatal(err)
						}
						if got := sinkDigest(t, res); got != want {
							t.Errorf("digest differs from serial (workers=%d mode=%s)", workers, mode.name)
						}
					})
				}
			}
		})
	}
}
