package conformance

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/faultinject"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// recoverController builds an MPI controller configured for fault-tolerant
// runs over real loopback TCP meshes: Connect builds a fresh epoch-stamped
// wire mesh per attempt, Inject arms the plan's faults on the first epoch
// only (the retry epochs run clean, as a restarted process would).
func recoverController(t *testing.T, g core.TaskGraph, m core.TaskMap, cb core.Callback) (*mpi.Controller, mpi.ConnectFunc) {
	t.Helper()
	ctrl := mpi.New(mpi.WithRetry(core.RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 5 * time.Millisecond,
	}))
	if err := ctrl.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	for _, cid := range g.Callbacks() {
		if err := ctrl.RegisterCallback(cid, cb); err != nil {
			t.Fatal(err)
		}
	}
	fp := ctrl.Fingerprint()
	connect := func(epoch, ranks int) ([]fabric.Transport, error) {
		fabs, err := wire.Mesh(ranks, wire.Options{
			Fingerprint:       fp,
			Epoch:             epoch,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		trs := make([]fabric.Transport, len(fabs))
		for i, f := range fabs {
			trs[i] = f
		}
		return trs, nil
	}
	return ctrl, connect
}

func injectOnFirstEpoch(plan faultinject.Plan) mpi.InjectFunc {
	return func(epoch, rank int, tr fabric.Transport) fabric.Transport {
		if epoch != 1 {
			return tr
		}
		return faultinject.Wrap(tr, rank, plan)
	}
}

// TestFaultReplayConformance is the recovery conformance sweep of the
// acceptance criteria: each figure workload runs on 4 ranks over loopback
// TCP with one peer killed deterministically — the kill point sweeping the
// victim's outbound message indices — and the recovered sinks must be
// byte-identical to the serial reference.
func TestFaultReplayConformance(t *testing.T) {
	mk := func(g core.TaskGraph, err error) core.TaskGraph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := map[string]core.TaskGraph{
		"reduction":  mk(graphAsTaskGraph(graphs.NewReduction(8, 2))),
		"binaryswap": mk(graphAsTaskGraph(graphs.NewBinarySwap(8))),
		"kwaymerge":  mk(graphAsTaskGraph(graphs.NewKWayMerge(8, 2))),
	}
	const ranks = 4
	for name, g := range cases {
		for killAfter := 0; killAfter < 3; killAfter++ {
			name, g, killAfter := name, g, killAfter
			victim := 1 + killAfter%(ranks-1) // never rank 0, varies with the kill point
			t.Run(fmt.Sprintf("%s/kill_rank%d_after%d", name, victim, killAfter), func(t *testing.T) {
				t.Parallel()
				cb := mixCallback(g)
				initial := externalInputsFor(g)
				want := serialReference(t, g, cb, initial)

				m := core.NewGraphMap(ranks, g)
				ctrl, connect := recoverController(t, g, m, cb)
				got, rep, err := ctrl.RunRecover(context.Background(), mpi.RecoverOptions{
					Connect: connect,
					Inject: injectOnFirstEpoch(faultinject.Plan{
						KillRank:  victim,
						KillAfter: killAfter,
						Delay:     time.Millisecond,
					}),
					Initial: initial,
				})
				if err != nil {
					t.Fatalf("RunRecover: %v (report %+v)", err, rep)
				}
				assertSameSinks(t, want, got)
				if rep.Epochs > 1 {
					// The kill fired: the victim must be on the casualty list
					// and recovery must have replayed from the ledgers rather
					// than recomputing everything from scratch.
					found := false
					for _, s := range rep.LostShards {
						if s == core.ShardId(victim) {
							found = true
						}
					}
					if !found {
						t.Errorf("lost shards %v do not include killed rank %d", rep.LostShards, victim)
					}
				}
				t.Logf("epochs=%d lost=%v replayed=%d executed=%d recovery=%v",
					rep.Epochs, rep.LostShards, rep.Replayed, rep.Executed, rep.RecoveryTime)
			})
		}
	}
}

// TestFaultDuplicateDelivery redelivers every second inter-rank message
// with its original sequence number: the receiver-side dedup of the
// fault-tolerant path must drop the copies, keeping the sinks byte-identical
// to serial with no retry epoch.
func TestFaultDuplicateDelivery(t *testing.T) {
	g, err := graphs.NewKWayMerge(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb := mixCallback(g)
	initial := externalInputsFor(g)
	want := serialReference(t, g, cb, initial)

	m := core.NewGraphMap(4, g)
	ctrl, connect := recoverController(t, g, m, cb)
	got, rep, err := ctrl.RunRecover(context.Background(), mpi.RecoverOptions{
		Connect: connect,
		Inject: injectOnFirstEpoch(faultinject.Plan{
			KillRank:       -1,
			DuplicateEvery: 2,
		}),
		Initial: initial,
	})
	if err != nil {
		t.Fatalf("RunRecover: %v", err)
	}
	if rep.Epochs != 1 {
		t.Errorf("duplicates alone forced %d epochs, want 1", rep.Epochs)
	}
	assertSameSinks(t, want, got)
}

// TestFaultDegradeToSingleRank kills a rank on EVERY epoch: the survivor
// set shrinks 4 → 3 → 2 → 1, and the final single-rank epoch — whose
// messages are all local, beyond the injector's reach — must still deliver
// sinks byte-identical to serial, accelerated by three epochs of ledger
// replay.
func TestFaultDegradeToSingleRank(t *testing.T) {
	g, err := graphs.NewReduction(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb := mixCallback(g)
	initial := externalInputsFor(g)
	want := serialReference(t, g, cb, initial)

	m := core.NewGraphMap(4, g)
	ctrl, connect := recoverController(t, g, m, cb)
	got, rep, err := ctrl.RunRecover(context.Background(), mpi.RecoverOptions{
		Connect: connect,
		Inject: func(epoch, rank int, tr fabric.Transport) fabric.Transport {
			return faultinject.Wrap(tr, rank, faultinject.Plan{KillRank: 0, KillAfter: 0})
		},
		Initial: initial,
	})
	if err != nil {
		t.Fatalf("RunRecover: %v (report %+v)", err, rep)
	}
	assertSameSinks(t, want, got)
	if len(rep.LostShards) == 0 {
		t.Error("no shards reported lost")
	}
	if rep.Epochs < 2 {
		t.Errorf("completed in %d epoch(s), expected repeated recovery", rep.Epochs)
	}
	t.Logf("epochs=%d lost=%v replayed=%d executed=%d", rep.Epochs, rep.LostShards, rep.Replayed, rep.Executed)
}

// TestFaultRetriesExhausted bounds recovery: with a two-attempt budget and
// a kill on every epoch, RunRecover must give up with a typed
// ErrRetriesExhausted rather than hang or mask the failure.
func TestFaultRetriesExhausted(t *testing.T) {
	g, err := graphs.NewReduction(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb := mixCallback(g)
	initial := externalInputsFor(g)

	m := core.NewGraphMap(4, g)
	ctrl := mpi.New(mpi.WithRetry(core.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}))
	if err := ctrl.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	for _, cid := range g.Callbacks() {
		if err := ctrl.RegisterCallback(cid, cb); err != nil {
			t.Fatal(err)
		}
	}
	fp := ctrl.Fingerprint()
	connect := func(epoch, ranks int) ([]fabric.Transport, error) {
		fabs, err := wire.Mesh(ranks, wire.Options{
			Fingerprint:       fp,
			Epoch:             epoch,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		trs := make([]fabric.Transport, len(fabs))
		for i, f := range fabs {
			trs[i] = f
		}
		return trs, nil
	}
	_, rep, err := ctrl.RunRecover(context.Background(), mpi.RecoverOptions{
		Connect: connect,
		Inject: func(epoch, rank int, tr fabric.Transport) fabric.Transport {
			return faultinject.Wrap(tr, rank, faultinject.Plan{KillRank: 0, KillAfter: 0})
		},
		Initial: initial,
	})
	if err == nil {
		t.Fatal("RunRecover succeeded though every epoch was killed")
	}
	if !errors.Is(err, core.ErrRetriesExhausted) {
		t.Errorf("error %v does not wrap core.ErrRetriesExhausted", err)
	}
	if rep.Epochs != 2 {
		t.Errorf("gave up after %d epoch(s), want 2", rep.Epochs)
	}
}

// TestRunContextCancellation covers the context-aware Controller API: a
// cancelled context must unwind an in-flight run promptly with an error
// wrapping core.ErrCancelled, on every controller that executes
// concurrently.
func TestRunContextCancellation(t *testing.T) {
	g := randomDAG(40, 77)
	if err := core.Validate(g); err != nil {
		t.Fatal(err)
	}
	slow := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		time.Sleep(5 * time.Millisecond)
		return mixCallback(g)(in, id)
	}
	initial := externalInputsFor(g)
	for name, ctrl := range allControllers(g, 4) {
		if name == "serial" {
			continue
		}
		name, ctrl := name, ctrl
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, cid := range g.Callbacks() {
				if err := ctrl.RegisterCallback(cid, slow); err != nil {
					t.Fatal(err)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := ctrl.RunContext(ctx, initial)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("RunContext returned nil error under a 10ms deadline")
			}
			if !errors.Is(err, core.ErrCancelled) {
				t.Errorf("error %v does not wrap core.ErrCancelled", err)
			}
			if elapsed > 5*time.Second {
				t.Errorf("cancellation took %v", elapsed)
			}
		})
	}
}

// TestSerialRunContextCancellation covers the serial controller separately:
// it observes the context between tasks, so a pre-cancelled context must
// fail fast.
func TestSerialRunContextCancellation(t *testing.T) {
	g := randomDAG(10, 7)
	cb := mixCallback(g)
	ser := core.NewSerial()
	ser.Initialize(g, nil)
	for _, cid := range g.Callbacks() {
		ser.RegisterCallback(cid, cb)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ser.RunContext(ctx, externalInputsFor(g)); !errors.Is(err, core.ErrCancelled) {
		t.Errorf("serial RunContext on cancelled ctx: %v, want ErrCancelled", err)
	}
}
