package conformance

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

// fanOutGraph builds a graph stressing the copy-on-fan-out routing policy:
// two external producers multicast to a middle layer of four tasks, each of
// which multicasts again to two shared sinks. Every internal edge is part of
// a fan-out, so the wire form of each output is shared by several consumers.
//
//	P0 ──[A B C D]           A B C D ──[E F]
//	P1 ──[A B] [C D]         E, F: sinks
func fanOutGraph() *core.ExplicitGraph {
	const (
		p0 core.TaskId = iota
		p1
		a
		b
		c
		d
		e
		f
	)
	mid := []core.TaskId{a, b, c, d}
	tasks := []core.Task{
		{Id: p0, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{mid}},
		{Id: p1, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{a, b}, {c, d}}},
	}
	for _, id := range mid {
		tasks = append(tasks, core.Task{
			Id: id, Callback: 0,
			Incoming: []core.TaskId{p0, p1},
			Outgoing: [][]core.TaskId{{e, f}},
		})
	}
	for _, id := range []core.TaskId{e, f} {
		tasks = append(tasks, core.Task{
			Id: id, Callback: 0,
			Incoming: []core.TaskId{a, b, c, d},
			Outgoing: [][]core.TaskId{{}},
		})
	}
	return core.NewExplicitGraph(tasks)
}

// mutatingCallback digests its inputs, then deliberately scribbles over
// every input buffer in place before returning. A task owns its inputs, so
// the scribbling is legal — and if any two consumers of a fan-out slot were
// handed aliased wire buffers, one consumer's scribble would corrupt the
// bytes another consumer digests, and the sink outputs would diverge from
// the serial reference.
func mutatingCallback(g core.TaskGraph) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		h := sha256.New()
		var idb [8]byte
		binary.LittleEndian.PutUint64(idb[:], uint64(id))
		h.Write(idb[:])
		for _, p := range in {
			w, err := p.Wire()
			if err != nil {
				return nil, err
			}
			h.Write(w)
		}
		for _, p := range in {
			for i := range p.Data {
				p.Data[i] = byte(0xA0) ^ byte(id)
			}
		}
		base := h.Sum(nil)
		t, _ := g.Task(id)
		out := make([]core.Payload, len(t.Outgoing))
		for s := range out {
			buf := make([]byte, len(base)+1)
			copy(buf, base)
			buf[len(base)] = byte(s)
			out[s] = core.Buffer(buf)
		}
		return out, nil
	}
}

// TestFanOutMutationIsolation asserts pooled/shared wire buffers are never
// aliased between consumers: with callbacks that mutate their received
// payloads in place, every controller at every shard count must still match
// the serial reference byte for byte.
func TestFanOutMutationIsolation(t *testing.T) {
	g := fanOutGraph()
	if err := core.Validate(g); err != nil {
		t.Fatal(err)
	}
	cb := mutatingCallback(g)
	freshInitial := func() map[core.TaskId][]core.Payload {
		return externalInputsFor(g)
	}

	ser := core.NewSerial()
	ser.Initialize(g, nil)
	ser.RegisterCallback(0, cb)
	want, err := ser.Run(freshInitial())
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 {
		t.Fatalf("serial reference produced %d sinks, want 2", len(want))
	}

	for shards := 1; shards <= 4; shards++ {
		for name, c := range allControllers(g, shards) {
			if name == "serial" {
				continue
			}
			t.Run(fmt.Sprintf("shards%d/%s", shards, name), func(t *testing.T) {
				if err := c.RegisterCallback(0, cb); err != nil {
					t.Fatal(err)
				}
				got, err := c.Run(freshInitial())
				if err != nil {
					t.Fatal(err)
				}
				for id, ws := range want {
					gs := got[id]
					if len(gs) != len(ws) {
						t.Fatalf("task %d: %d payloads, want %d", id, len(gs), len(ws))
					}
					for i := range ws {
						wb, _ := ws[i].Wire()
						gb, _ := gs[i].Wire()
						if !bytes.Equal(wb, gb) {
							t.Errorf("task %d sink %d differs: a consumer observed another consumer's in-place mutation", id, i)
						}
					}
				}
			})
		}
	}
}
