package conformance

import (
	"fmt"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/faultinject"
	"github.com/babelflow/babelflow-go/internal/register"
)

// iterRegCase builds the iterative registration refinement workload the
// loop-combinator conformance sweeps run: a 3x2 tile grid whose pairwise
// offset estimates are refined under core.Iterate until the root's changed
// count reaches zero. The returned initial function mints fresh external
// inputs per run (runs consume their inputs); the tile set itself is
// deterministic, so every run of the workload must converge at the same
// iteration with byte-identical sinks.
func iterRegCase(t *testing.T) (register.Config, *core.IterativeGraph, func(core.CallbackRegistrar) error, func() map[core.TaskId][]core.Payload) {
	t.Helper()
	cfg := register.Config{GridW: 3, GridH: 2, Tile: 16, Overlap: 0.25, Jitter: 1}
	ig, err := cfg.Iterative(6)
	if err != nil {
		t.Fatal(err)
	}
	reg := func(c core.CallbackRegistrar) error { return cfg.RegisterIter(c, ig) }
	tiles := data.BrainSpecimen(cfg.GridW, cfg.GridH, cfg.Tile, cfg.Overlap, cfg.Jitter, 20260707)
	initial := func() map[core.TaskId][]core.Payload {
		in, err := cfg.IterInitial(tiles)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	return cfg, ig, reg, initial
}

// assertIterConverged decodes the run's decision sinks: the predicate must
// have fired strictly before the iteration bound (so conditional routing,
// not the bound, ended the loop) and the estimates must decode.
func assertIterConverged(t *testing.T, cfg register.Config, ig *core.IterativeGraph, results map[core.TaskId][]core.Payload) int {
	t.Helper()
	iter, sinks, err := ig.Final(results)
	if err != nil {
		t.Fatalf("Final: %v", err)
	}
	if iter >= ig.MaxIter()-1 {
		t.Fatalf("converged at iteration %d: the bound, not the predicate, ended the loop", iter)
	}
	if _, err := cfg.IterEstimates(sinks); err != nil {
		t.Fatalf("converged sinks do not decode: %v", err)
	}
	return iter
}

// TestIterateWireConformance runs the iterative registration loop on 4
// ranks over real loopback fabrics at every transport tier: each tier's
// converged sinks must be byte-identical to the serial reference, and the
// convergence decision (which iteration's branch went live) must agree —
// runtime control flow is part of the conformance surface, not just the
// payload bytes.
func TestIterateWireConformance(t *testing.T) {
	cfg, ig, reg, initial := iterRegCase(t)
	want := serialReferenceReg(t, ig, reg, initial())
	wantIter := assertIterConverged(t, cfg, ig, want)

	for _, tc := range conformanceTiers {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got := runOverWireReg(t, ig, core.NewIterativeMap(4, ig), reg, initial(), tc.tier)
			assertSameSinks(t, want, got)
			if iter := assertIterConverged(t, cfg, ig, got); iter != wantIter {
				t.Errorf("converged at iteration %d over %s, serial at %d", iter, tc.name, wantIter)
			}
		})
	}
}

// TestIterateResumeAfterKillingAllRanks kills EVERY rank mid-iteration
// during a journaled run of the refinement loop, then resumes over the same
// journal directory: replayed loop state (iteration-prefixed task ids,
// decision outcomes, dead-branch cancellations) must splice with live
// execution to reproduce the serial reference byte-for-byte. Cancelled
// dead-branch tasks are journaled like any other completion, so the
// restored/replayed/executed ledger accounting must still tile the whole
// unrolled graph.
func TestIterateResumeAfterKillingAllRanks(t *testing.T) {
	const ranks = 4
	cfg, ig, reg, initial := iterRegCase(t)
	want := serialReferenceReg(t, ig, reg, initial())
	wantIter := assertIterConverged(t, cfg, ig, want)

	for _, tc := range conformanceTiers {
		for _, killAfter := range []int{0, 6} {
			tc, killAfter := tc, killAfter
			t.Run(fmt.Sprintf("%s/killall_after%d", tc.name, killAfter), func(t *testing.T) {
				t.Parallel()
				m := core.NewIterativeMap(ranks, ig)
				dir := t.TempDir()

				_, errs, _ := journaledWireRunReg(t, ig, m, reg, initial(), dir, tc.tier, nil,
					func(rank int, tr fabric.Transport) fabric.Transport {
						return faultinject.Wrap(tr, rank, faultinject.Plan{
							KillRank:  rank,
							KillAfter: killAfter,
							Delay:     time.Millisecond,
						})
					})
				failed := 0
				for _, err := range errs {
					if err != nil {
						failed++
					}
				}
				if failed == 0 {
					t.Fatal("kill-all seed run completed without a single failure")
				}

				got, errs, js := journaledWireRunReg(t, ig, m, reg, initial(), dir, tc.tier, nil, nil)
				for r, err := range errs {
					if err != nil {
						t.Fatalf("resume rank %d: %v", r, err)
					}
				}
				assertSameSinks(t, want, got)
				if iter := assertIterConverged(t, cfg, ig, got); iter != wantIter {
					t.Errorf("resume converged at iteration %d, serial at %d", iter, wantIter)
				}
				if js.Restored == 0 {
					t.Error("resume restored nothing: seed run journaled no progress")
				}
				if js.Replayed != js.Restored {
					t.Errorf("replayed %d tasks, restored %d — every restored task must replay", js.Replayed, js.Restored)
				}
				if js.Replayed+js.Executed != ig.Size() {
					t.Errorf("replayed %d + executed %d != %d unrolled tasks", js.Replayed, js.Executed, ig.Size())
				}
				t.Logf("seed failed_ranks=%d; resume restored=%d replayed=%d executed=%d of %d",
					failed, js.Restored, js.Replayed, js.Executed, ig.Size())
			})
		}
	}
}
