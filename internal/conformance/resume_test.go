package conformance

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/faultinject"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// countingCallback wraps cb with an execution counter so resume tests can
// prove which tasks actually re-ran.
func countingCallback(cb core.Callback, execs *atomic.Int64) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		execs.Add(1)
		return cb(in, id)
	}
}

// journaledWireRun drives one journaled multi-process-shaped run: one
// controller per rank (as separate OS processes would have), each RunRank
// on its own loopback fabric at the given transport tier, optionally
// wrapped with fault injection. journalOpts extends the per-rank controller
// configuration (journal sync policy, commit window). It returns the merged
// sink results, the per-rank errors, and the summed journal stats.
func journaledWireRun(t *testing.T, g core.TaskGraph, m core.TaskMap, cb core.Callback, initial map[core.TaskId][]core.Payload, dir string, tier wire.Tier, journalOpts []mpi.Option, inject func(rank int, tr fabric.Transport) fabric.Transport) (map[core.TaskId][]core.Payload, []error, mpi.JournalStats) {
	t.Helper()
	return journaledWireRunReg(t, g, m, registerAll(g, cb), initial, dir, tier, journalOpts, inject)
}

// journaledWireRunReg is journaledWireRun with an explicit
// callback-registration function instead of one callback for every id.
func journaledWireRunReg(t *testing.T, g core.TaskGraph, m core.TaskMap, reg func(core.CallbackRegistrar) error, initial map[core.TaskId][]core.Payload, dir string, tier wire.Tier, journalOpts []mpi.Option, inject func(rank int, tr fabric.Transport) fabric.Transport) (map[core.TaskId][]core.Payload, []error, mpi.JournalStats) {
	t.Helper()
	ranks := m.ShardCount()
	ctrls := make([]*mpi.Controller, ranks)
	for r := range ctrls {
		ctrls[r] = mpi.New(append([]mpi.Option{mpi.WithJournal(dir)}, journalOpts...)...)
		if err := ctrls[r].Initialize(g, m); err != nil {
			t.Fatal(err)
		}
		if err := reg(ctrls[r]); err != nil {
			t.Fatal(err)
		}
	}
	fabrics := connectWireMesh(t, ranks, ctrls[0].Fingerprint(), wire.Options{
		Tier:              tier,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
	})
	parts := partitionInitial(m, initial)

	results := make([]map[core.TaskId][]core.Payload, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var tr fabric.Transport = fabrics[r]
			if inject != nil {
				tr = inject(r, tr)
			}
			results[r], errs[r] = ctrls[r].RunRank(r, tr, parts[r])
			if errs[r] == nil {
				errs[r] = fabrics[r].Shutdown(30 * time.Second)
			}
		}(r)
	}
	wg.Wait()

	var js mpi.JournalStats
	for _, c := range ctrls {
		s := c.JournalStats()
		js.Restored += s.Restored
		js.Replayed += s.Replayed
		js.Executed += s.Executed
		js.StoreErrors += s.StoreErrors
	}
	merged := make(map[core.TaskId][]core.Payload)
	for _, res := range results {
		for id, ps := range res {
			merged[id] = append(merged[id], ps...)
		}
	}
	return merged, errs, js
}

// TestResumeAfterKillingAllRanks is the checkpoint/restart acceptance
// sweep: every figure workload runs journaled on 4 ranks over loopback
// sockets at each transport tier, EVERY rank — including rank 0 — is killed
// after its N-th inter-rank send, and a second run over the same journal
// directory must produce sinks byte-identical to the serial reference while
// re-executing only the tasks the journals did not retain. The
// unix/group-commit configuration additionally crashes every rank with its
// commit window still open (interval and record threshold too large to ever
// fire mid-run), proving the watermark semantics survive an unclean death.
func TestResumeAfterKillingAllRanks(t *testing.T) {
	mk := func(g core.TaskGraph, err error) core.TaskGraph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := map[string]core.TaskGraph{
		"reduction":  mk(graphAsTaskGraph(graphs.NewReduction(8, 2))),
		"binaryswap": mk(graphAsTaskGraph(graphs.NewBinarySwap(8))),
		"kwaymerge":  mk(graphAsTaskGraph(graphs.NewKWayMerge(8, 2))),
	}
	configs := []struct {
		name string
		tier wire.Tier
		opts []mpi.Option
	}{
		{"tcp", wire.TierTCP, nil},
		{"unix", wire.TierUnix, nil},
		{"shm", wire.TierShm, nil},
		{"unix_groupcommit", wire.TierUnix, []mpi.Option{mpi.WithJournalGroupCommit(time.Hour, 1<<20)}},
	}
	const ranks = 4
	for name, g := range cases {
		for _, cfg := range configs {
			for _, killAfter := range []int{0, 2} {
				name, g, cfg, killAfter := name, g, cfg, killAfter
				t.Run(fmt.Sprintf("%s/%s/killall_after%d", name, cfg.name, killAfter), func(t *testing.T) {
					t.Parallel()
					cb := mixCallback(g)
					initial := externalInputsFor(g)
					want := serialReference(t, g, cb, initial)
					m := core.NewGraphMap(ranks, g)
					dir := t.TempDir()

					// Seed run: every rank is its own victim, so the whole job
					// dies mid-flight — the all-processes-crashed scenario.
					var seedExecs atomic.Int64
					_, errs, _ := journaledWireRun(t, g, m, countingCallback(cb, &seedExecs), initial, dir, cfg.tier, cfg.opts,
						func(rank int, tr fabric.Transport) fabric.Transport {
							return faultinject.Wrap(tr, rank, faultinject.Plan{
								KillRank:  rank,
								KillAfter: killAfter,
								Delay:     time.Millisecond,
							})
						})
					failed := 0
					for _, err := range errs {
						if err != nil {
							failed++
						}
					}
					if failed == 0 {
						t.Fatal("kill-all seed run completed without a single failure")
					}

					// Resume: a fresh mesh and fresh controllers over the same
					// journal directory.
					var resExecs atomic.Int64
					got, errs, js := journaledWireRun(t, g, m, countingCallback(cb, &resExecs), initial, dir, cfg.tier, cfg.opts, nil)
					for r, err := range errs {
						if err != nil {
							t.Fatalf("resume rank %d: %v", r, err)
						}
					}
					assertSameSinks(t, want, got)
					if js.Restored == 0 {
						t.Error("resume restored nothing: seed run journaled no progress")
					}
					if js.Replayed != js.Restored {
						t.Errorf("replayed %d tasks, restored %d — every restored task must replay", js.Replayed, js.Restored)
					}
					wantExec := g.Size() - js.Restored
					if int(resExecs.Load()) != wantExec || js.Executed != wantExec {
						t.Errorf("resume executed %d callbacks (stats %d), want exactly the %d un-journaled tasks",
							resExecs.Load(), js.Executed, wantExec)
					}
					t.Logf("seed executed=%d failed_ranks=%d; resume restored=%d replayed=%d executed=%d",
						seedExecs.Load(), failed, js.Restored, js.Replayed, js.Executed)
				})
			}
		}
	}
}

// TestCorruptFrameTriggersRecovery flips one payload bit in transit during
// the first epoch of a fault-tolerant run, once per transport tier: the
// receiver must classify the corrupt frame as a lost peer on TCP, unix and
// shm alike (the CRC sits in the frame, not the transport), and the
// recovery epoch must still deliver sinks byte-identical to serial. The
// socket tiers corrupt the byte stream under the framing layer; the shm
// tier flips a CRC bit in the mapped ring, the torn-ring analogue.
func TestCorruptFrameTriggersRecovery(t *testing.T) {
	for _, tc := range conformanceTiers {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			corruptFrameRecovery(t, tc.tier)
		})
	}
}

func corruptFrameRecovery(t *testing.T, tier wire.Tier) {
	g, err := graphs.NewReduction(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb := mixCallback(g)
	initial := externalInputsFor(g)
	want := serialReference(t, g, cb, initial)

	m := core.NewGraphMap(4, g)
	ctrl := mpi.New(mpi.WithRetry(core.RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 5 * time.Millisecond,
	}))
	if err := ctrl.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	for _, cid := range g.Callbacks() {
		if err := ctrl.RegisterCallback(cid, cb); err != nil {
			t.Fatal(err)
		}
	}
	fp := ctrl.Fingerprint()
	connect := func(epoch, ranks int) ([]fabric.Transport, error) {
		opt := wire.Options{
			Fingerprint:       fp,
			Epoch:             epoch,
			Tier:              tier,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
		}
		if epoch == 1 && tier != wire.TierShm {
			// Corrupt the first payload byte of the first data frame rank 1
			// sends to rank 0 (writes smaller than a one-byte data frame are
			// control traffic).
			opt.WrapConn = faultinject.CorruptNthWrite(1, 0, 1, wire.DataFrameOverhead+1, wire.DataFrameOverhead)
		}
		fabs, err := wire.Mesh(ranks, opt)
		if err != nil {
			return nil, err
		}
		if epoch == 1 && tier == wire.TierShm {
			// Ring frames never cross a conn, so WrapConn cannot reach them:
			// flip a header CRC bit on the first data frame rank 1 pushes
			// into its ring to rank 0 instead.
			if !fabs[1].CorruptNextShmFrame(0) {
				for _, f := range fabs {
					f.Kill()
				}
				return nil, fmt.Errorf("no shm link from rank 1 to rank 0 to corrupt")
			}
		}
		trs := make([]fabric.Transport, len(fabs))
		for i, f := range fabs {
			trs[i] = f
		}
		return trs, nil
	}

	got, rep, err := ctrl.RunRecover(context.Background(), mpi.RecoverOptions{
		Connect: connect,
		Initial: initial,
	})
	if err != nil {
		t.Fatalf("RunRecover: %v (report %+v)", err, rep)
	}
	assertSameSinks(t, want, got)
	if rep.Epochs < 2 {
		t.Errorf("corrupt frame did not force a recovery epoch (epochs=%d)", rep.Epochs)
	}
	t.Logf("epochs=%d lost=%v replayed=%d executed=%d", rep.Epochs, rep.LostShards, rep.Replayed, rep.Executed)
}

// resumeDamagedJournal journals a full in-process run (seedOpts extends the
// seed controller's journal configuration), damages rank 0's first journal
// segment with damage, then resumes with a fresh controller: the sinks must
// match and only the tasks whose records were lost may re-execute.
func resumeDamagedJournal(t *testing.T, damage func(segment string) error, seedOpts ...mpi.Option) {
	g, err := graphs.NewReduction(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb := mixCallback(g)
	initial := externalInputsFor(g)
	want := serialReference(t, g, cb, initial)
	m := core.NewGraphMap(4, g)
	dir := t.TempDir()

	run := func(execs *atomic.Int64, opts ...mpi.Option) (map[core.TaskId][]core.Payload, mpi.JournalStats) {
		t.Helper()
		c := mpi.New(append([]mpi.Option{mpi.WithJournal(dir)}, opts...)...)
		if err := c.Initialize(g, m); err != nil {
			t.Fatal(err)
		}
		for _, cid := range g.Callbacks() {
			if err := c.RegisterCallback(cid, countingCallback(cb, execs)); err != nil {
				t.Fatal(err)
			}
		}
		got, err := c.Run(cloneInputs(t, initial))
		if err != nil {
			t.Fatal(err)
		}
		return got, c.JournalStats()
	}

	var execs atomic.Int64
	run(&execs, seedOpts...)
	if int(execs.Load()) != g.Size() {
		t.Fatalf("seed run executed %d callbacks, want %d", execs.Load(), g.Size())
	}

	segs, err := filepath.Glob(filepath.Join(dir, "rank-0", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("rank 0 journal segments missing: %v (%v)", segs, err)
	}
	if err := damage(segs[0]); err != nil {
		t.Fatal(err)
	}

	execs.Store(0)
	got, js := run(&execs)
	assertSameSinks(t, want, got)
	reexecuted := int(execs.Load())
	if reexecuted == 0 {
		t.Fatal("journal damage destroyed no record — the test exercised nothing")
	}
	if reexecuted >= g.Size() {
		t.Fatalf("resume re-executed all %d tasks: surviving records were not replayed", reexecuted)
	}
	if js.Replayed+js.Executed != g.Size() {
		t.Errorf("replayed %d + executed %d != %d tasks", js.Replayed, js.Executed, g.Size())
	}
	t.Logf("damage cost %d re-executions, %d replays", reexecuted, js.Replayed)
}

// cloneInputs deep-copies external inputs so successive runs in one test
// cannot alias each other's consumed payloads.
func cloneInputs(t *testing.T, in map[core.TaskId][]core.Payload) map[core.TaskId][]core.Payload {
	t.Helper()
	out := make(map[core.TaskId][]core.Payload, len(in))
	for id, ps := range in {
		cp := make([]core.Payload, len(ps))
		for i, p := range ps {
			c, err := p.CloneForWire()
			if err != nil {
				t.Fatal(err)
			}
			cp[i] = c
		}
		out[id] = cp
	}
	return out
}

// TestResumeWithTornJournalTail resumes over a journal whose last record
// was torn mid-write by a crash.
func TestResumeWithTornJournalTail(t *testing.T) {
	resumeDamagedJournal(t, func(seg string) error {
		return faultinject.TruncateTail(seg, 5)
	})
}

// TestResumeWithCorruptJournalRecord resumes over a journal with a bit
// flipped in the middle of a segment — at-rest corruption inside a record.
func TestResumeWithCorruptJournalRecord(t *testing.T) {
	resumeDamagedJournal(t, func(seg string) error {
		info, err := os.Stat(seg)
		if err != nil {
			return err
		}
		return faultinject.FlipBit(seg, info.Size()/2, 3)
	})
}

// TestResumeGroupCommitCrashMidWindow seeds the journal under group commit
// with a commit window too large to ever close mid-run, then tears the tail
// off rank 0's first segment — the on-disk image of a host that crashed
// before the window's fsync landed. The resume must replay every surviving
// record, re-execute only the torn ones, and still match serial
// byte-for-byte.
func TestResumeGroupCommitCrashMidWindow(t *testing.T) {
	resumeDamagedJournal(t, func(seg string) error {
		return faultinject.TruncateTail(seg, 5)
	}, mpi.WithJournalGroupCommit(time.Hour, 1<<20))
}
