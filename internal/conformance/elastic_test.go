package conformance

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/faultinject"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// Elastic-membership conformance: live joins, graceful drains, the two
// interleaved, a joiner killed mid-hand-off, and an asymmetric partition —
// each must leave the sinks byte-identical to the serial reference, with
// the final epoch's replayed+executed covering every task exactly once.

// elasticController mirrors recoverController with a pinned transport tier
// and an optional per-epoch connection-level fault hook (the transport-
// level faults go through ElasticOptions.Inject instead).
func elasticController(t *testing.T, g core.TaskGraph, m core.TaskMap, cb core.Callback, tier wire.Tier, wrapFor func(epoch int) func(int, int, net.Conn) net.Conn) (*mpi.Controller, mpi.ConnectFunc) {
	t.Helper()
	ctrl := mpi.New(mpi.WithRetry(core.RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 5 * time.Millisecond,
	}))
	if err := ctrl.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	for _, cid := range g.Callbacks() {
		if err := ctrl.RegisterCallback(cid, cb); err != nil {
			t.Fatal(err)
		}
	}
	fp := ctrl.Fingerprint()
	connect := func(epoch, ranks int) ([]fabric.Transport, error) {
		opt := wire.Options{
			Fingerprint:       fp,
			Epoch:             epoch,
			Tier:              tier,
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  500 * time.Millisecond,
		}
		if wrapFor != nil {
			opt.WrapConn = wrapFor(epoch)
		}
		fabs, err := wire.Mesh(ranks, opt)
		if err != nil {
			return nil, err
		}
		trs := make([]fabric.Transport, len(fabs))
		for i, f := range fabs {
			trs[i] = f
		}
		return trs, nil
	}
	return ctrl, connect
}

// triggerAfter invokes fire exactly once, from inside the nth callback
// execution, then parks that task briefly so the membership fence provably
// lands mid-epoch rather than racing the epoch's completion.
func triggerAfter(cb core.Callback, nth int64, fire func()) core.Callback {
	var count atomic.Int64
	var once sync.Once
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		if count.Add(1) == nth {
			once.Do(func() {
				fire()
				time.Sleep(50 * time.Millisecond)
			})
		}
		return cb(in, id)
	}
}

// triggerOnShard fires once, inside the nth execution of a task the base
// map places on the given shard — by which point that shard's earlier
// tasks are in its ledger, so a drain provably has lineage to hand off.
func triggerOnShard(cb core.Callback, m core.TaskMap, shard core.ShardId, nth int64, fire func()) core.Callback {
	var count atomic.Int64
	var once sync.Once
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		if m.Shard(id) == shard && count.Add(1) == nth {
			once.Do(func() {
				fire()
				time.Sleep(50 * time.Millisecond)
			})
		}
		return cb(in, id)
	}
}

func assertMembers(t *testing.T, ms *mpi.Membership, want ...core.ShardId) {
	t.Helper()
	got := ms.Members()
	set := make(map[core.ShardId]bool, len(got))
	for _, id := range got {
		set[id] = true
	}
	if len(got) != len(want) {
		t.Fatalf("members %v, want %v", got, want)
	}
	for _, id := range want {
		if !set[id] {
			t.Fatalf("members %v, want %v", got, want)
		}
	}
}

// TestElasticJoinMidWorkload grows the mesh 2→4 while the dataflow runs:
// two joins arrive mid-epoch, the epoch fences once, and the rebalanced
// 4-member epoch finishes with sinks byte-identical to serial.
func TestElasticJoinMidWorkload(t *testing.T) {
	for _, tc := range conformanceTiers {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			g, err := graphs.NewKWayMerge(8, 2)
			if err != nil {
				t.Fatal(err)
			}
			cb := mixCallback(g)
			initial := externalInputsFor(g)
			want := serialReference(t, g, cb, initial)

			ms, err := mpi.NewMembership(2)
			if err != nil {
				t.Fatal(err)
			}
			trigger := triggerAfter(cb, 2, func() { ms.Join(); ms.Join() })
			m := core.NewGraphMap(2, g)
			ctrl, connect := elasticController(t, g, m, trigger, tc.tier, nil)
			got, rep, err := ctrl.RunElastic(context.Background(), mpi.ElasticOptions{
				Connect:    connect,
				Initial:    initial,
				Membership: ms,
			})
			if err != nil {
				t.Fatalf("RunElastic: %v (report %+v)", err, rep)
			}
			assertSameSinks(t, want, got)
			if len(rep.Joined) != 2 {
				t.Fatalf("joined %v, want two members", rep.Joined)
			}
			if rep.Fences < 1 {
				t.Fatalf("mid-workload join did not fence the epoch (report %+v)", rep)
			}
			assertMembers(t, ms, 0, 1, 2, 3)
			if total := rep.Replayed + rep.Executed; total != g.Size() {
				t.Fatalf("final epoch replayed %d + executed %d = %d, want task count %d",
					rep.Replayed, rep.Executed, total, g.Size())
			}
			if rep.JoinLatency <= 0 {
				t.Fatal("join latency not recorded")
			}
			t.Logf("epochs=%d fences=%d replayed=%d executed=%d handoff=%d join=%v",
				rep.Epochs, rep.Fences, rep.Replayed, rep.Executed, rep.HandedOff, rep.JoinLatency)
		})
	}
}

// TestElasticDrainMidWorkload retires rank 3 of a 4-rank mesh mid-run: the
// drain fences the epoch after member 3 has lineage in its ledger, the
// hand-off adopts it into the survivors, and the 3-member epoch finishes
// byte-identical to serial — member 3 leaves without being declared lost.
func TestElasticDrainMidWorkload(t *testing.T) {
	for _, tc := range conformanceTiers {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			g, err := graphs.NewKWayMerge(8, 2)
			if err != nil {
				t.Fatal(err)
			}
			cb := mixCallback(g)
			initial := externalInputsFor(g)
			want := serialReference(t, g, cb, initial)

			ms, err := mpi.NewMembership(4)
			if err != nil {
				t.Fatal(err)
			}
			m := core.NewGraphMap(4, g)
			trigger := triggerOnShard(cb, m, 3, 2, func() {
				if err := ms.Drain(3); err != nil {
					t.Errorf("drain: %v", err)
				}
			})
			ctrl, connect := elasticController(t, g, m, trigger, tc.tier, nil)
			got, rep, err := ctrl.RunElastic(context.Background(), mpi.ElasticOptions{
				Connect:    connect,
				Initial:    initial,
				Membership: ms,
			})
			if err != nil {
				t.Fatalf("RunElastic: %v (report %+v)", err, rep)
			}
			assertSameSinks(t, want, got)
			if len(rep.Drained) != 1 || rep.Drained[0] != 3 {
				t.Fatalf("drained %v, want [3]", rep.Drained)
			}
			if len(rep.LostShards) != 0 {
				t.Fatalf("graceful drain declared losses: %v", rep.LostShards)
			}
			if rep.HandedOff == 0 {
				t.Fatalf("drain handed off no lineage (report %+v)", rep)
			}
			assertMembers(t, ms, 0, 1, 2)
			if total := rep.Replayed + rep.Executed; total != g.Size() {
				t.Fatalf("final epoch replayed %d + executed %d = %d, want task count %d",
					rep.Replayed, rep.Executed, total, g.Size())
			}
			if rep.DrainLatency <= 0 {
				t.Fatal("drain latency not recorded")
			}
			t.Logf("epochs=%d fences=%d replayed=%d executed=%d handoff=%d drain=%v",
				rep.Epochs, rep.Fences, rep.Replayed, rep.Executed, rep.HandedOff, rep.DrainLatency)
		})
	}
}

// TestElasticJoinDrainInterleaved requests a join and a drain together:
// both coalesce into ONE epoch bump (one fence), the joiner absorbs work,
// the drained member hands its lineage off, and the sinks stay serial.
func TestElasticJoinDrainInterleaved(t *testing.T) {
	for _, tc := range conformanceTiers {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			g, err := graphs.NewKWayMerge(8, 2)
			if err != nil {
				t.Fatal(err)
			}
			cb := mixCallback(g)
			initial := externalInputsFor(g)
			want := serialReference(t, g, cb, initial)

			ms, err := mpi.NewMembership(2)
			if err != nil {
				t.Fatal(err)
			}
			trigger := triggerAfter(cb, 2, func() {
				ms.Join()
				if err := ms.Drain(1); err != nil {
					t.Errorf("drain: %v", err)
				}
			})
			m := core.NewGraphMap(2, g)
			ctrl, connect := elasticController(t, g, m, trigger, tc.tier, nil)
			got, rep, err := ctrl.RunElastic(context.Background(), mpi.ElasticOptions{
				Connect:    connect,
				Initial:    initial,
				Membership: ms,
			})
			if err != nil {
				t.Fatalf("RunElastic: %v (report %+v)", err, rep)
			}
			assertSameSinks(t, want, got)
			if len(rep.Joined) != 1 || rep.Joined[0] != 2 {
				t.Fatalf("joined %v, want [2]", rep.Joined)
			}
			if len(rep.Drained) != 1 || rep.Drained[0] != 1 {
				t.Fatalf("drained %v, want [1]", rep.Drained)
			}
			if rep.Fences != 1 {
				t.Fatalf("interleaved join+drain cost %d fences, want exactly 1 (coalesced)", rep.Fences)
			}
			assertMembers(t, ms, 0, 2)
			if total := rep.Replayed + rep.Executed; total != g.Size() {
				t.Fatalf("final epoch replayed %d + executed %d = %d, want task count %d",
					rep.Replayed, rep.Executed, total, g.Size())
			}
		})
	}
}

// TestElasticJoinerKilledDuringHandoff joins a third member mid-run, then
// kills it on its first send of the rebalanced epoch — while it is taking
// over handed-off work. Recovery must evict exactly the joiner (its
// self-report is authoritative), resume from the surviving ledgers, and
// still match serial. The workload is a reduction: the task range the
// rebalance moves onto the joiner has cross-shard consumers there, so the
// joiner provably makes the inter-rank send the kill plan arms on (a
// k-way merge's movable tail is all shard-internal and would never send).
func TestElasticJoinerKilledDuringHandoff(t *testing.T) {
	g, err := graphs.NewReduction(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb := mixCallback(g)
	initial := externalInputsFor(g)
	want := serialReference(t, g, cb, initial)

	ms, err := mpi.NewMembership(2)
	if err != nil {
		t.Fatal(err)
	}
	trigger := triggerAfter(cb, 2, func() { ms.Join() })
	m := core.NewGraphMap(2, g)
	ctrl, connect := elasticController(t, g, m, trigger, wire.TierTCP, nil)
	// The joiner (member 2) sits at logical rank 2 of the 3-member epoch;
	// kill its transport on its first send there.
	inject := func(epoch, rank int, tr fabric.Transport) fabric.Transport {
		if epoch != 2 || rank != 2 {
			return tr
		}
		return faultinject.Wrap(tr, rank, faultinject.Plan{KillRank: 2, Delay: time.Millisecond})
	}
	got, rep, err := ctrl.RunElastic(context.Background(), mpi.ElasticOptions{
		Connect:    connect,
		Inject:     inject,
		Initial:    initial,
		Membership: ms,
	})
	if err != nil {
		t.Fatalf("RunElastic: %v (report %+v)", err, rep)
	}
	assertSameSinks(t, want, got)
	if len(rep.Joined) != 1 || rep.Joined[0] != 2 {
		t.Fatalf("joined %v, want [2]", rep.Joined)
	}
	if len(rep.LostShards) != 1 || rep.LostShards[0] != 2 {
		t.Fatalf("lost %v, want the killed joiner [2] (report %+v)", rep.LostShards, rep)
	}
	assertMembers(t, ms, 0, 1)
	if total := rep.Replayed + rep.Executed; total != g.Size() {
		t.Fatalf("final epoch replayed %d + executed %d = %d, want task count %d",
			rep.Replayed, rep.Executed, total, g.Size())
	}
	t.Logf("epochs=%d fences=%d lost=%v replayed=%d executed=%d",
		rep.Epochs, rep.Fences, rep.LostShards, rep.Replayed, rep.Executed)
}

// TestElasticAsymmetricPartitionKeepsMembership blackholes the 1→2 link of
// a 3-rank mesh for the first epoch: rank 2 hears nothing from rank 1 and
// declares it silent, the collapse makes the peers report rank 2 in turn —
// but every suspect spoke (reporting a loss is proof of life), so the
// partition-hardened classification keeps the membership intact and the
// flap costs exactly one epoch bump, not an eviction. Callbacks are paced
// so the epoch provably outlasts the heartbeat timeout; otherwise a small
// graph finishes inside the detection window and the dead link goes
// unnoticed.
func TestElasticAsymmetricPartitionKeepsMembership(t *testing.T) {
	g, err := graphs.NewKWayMerge(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb := mixCallback(g)
	initial := externalInputsFor(g)
	want := serialReference(t, g, cb, initial)

	ms, err := mpi.NewMembership(3)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewGraphMap(3, g)
	wrapFor := func(epoch int) func(int, int, net.Conn) net.Conn {
		if epoch != 1 {
			return nil
		}
		return faultinject.PartitionLink(1, 2)
	}
	paced := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		time.Sleep(100 * time.Millisecond)
		return cb(in, id)
	}
	ctrl, connect := elasticController(t, g, m, paced, wire.TierTCP, wrapFor)
	got, rep, err := ctrl.RunElastic(context.Background(), mpi.ElasticOptions{
		Connect:    connect,
		Initial:    initial,
		Membership: ms,
	})
	if err != nil {
		t.Fatalf("RunElastic: %v (report %+v)", err, rep)
	}
	assertSameSinks(t, want, got)
	if len(rep.LostShards) != 0 {
		t.Fatalf("partition evicted members %v; a partitioned-but-alive rank must not be declared dead", rep.LostShards)
	}
	assertMembers(t, ms, 0, 1, 2)
	if rep.Epochs != 2 {
		t.Fatalf("partition cost %d epochs, want exactly 2 (one bump)", rep.Epochs)
	}
	if total := rep.Replayed + rep.Executed; total != g.Size() {
		t.Fatalf("final epoch replayed %d + executed %d = %d, want task count %d",
			rep.Replayed, rep.Executed, total, g.Size())
	}
	t.Logf("epochs=%d lost=%v replayed=%d executed=%d recovery=%v",
		rep.Epochs, rep.LostShards, rep.Replayed, rep.Executed, rep.RecoveryTime)
}
