// Package conformance fuzz-tests the paper's central guarantee across the
// whole controller suite: for ANY valid task graph and any deterministic
// callbacks, every runtime controller produces byte-identical sink outputs,
// at any shard count. Random DAGs are generated with mixed fan-in/fan-out,
// multi-slot outputs, multicast edges and external inputs, and executed on
// serial, MPI (all modes), Charm++ (with aggressive load balancing) and
// both Legion controllers.
package conformance

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"github.com/babelflow/babelflow-go/internal/charm"
	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/legion"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

// randomDAG builds a pseudo-random valid task graph over n tasks with the
// given seed: task i may consume from up to 3 earlier tasks; producers
// partition their consumers into 1-2 output slots; tasks without producers
// take an external input; tasks without consumers get a sink slot.
func randomDAG(n int, seed uint64) *core.ExplicitGraph {
	rng := data.NewRand(seed)
	producers := make([][]core.TaskId, n) // per task: its producer list
	consumers := make([][]core.TaskId, n) // per task: its consumer list
	for i := 1; i < n; i++ {
		d := rng.Intn(4) // 0..3 inputs from earlier tasks
		if d > i {
			d = i
		}
		seen := map[int]bool{}
		for j := 0; j < d; j++ {
			p := rng.Intn(i)
			if seen[p] {
				continue
			}
			seen[p] = true
			producers[i] = append(producers[i], core.TaskId(p))
			consumers[p] = append(consumers[p], core.TaskId(i))
		}
	}

	tasks := make([]core.Task, n)
	for i := 0; i < n; i++ {
		t := core.Task{Id: core.TaskId(i), Callback: core.CallbackId(i % 3)}
		// Inputs: external if no producers (plus a 25% chance of an extra
		// external input for any task).
		if len(producers[i]) == 0 {
			t.Incoming = append(t.Incoming, core.ExternalInput)
		} else if rng.Intn(4) == 0 {
			t.Incoming = append(t.Incoming, core.ExternalInput)
		}
		t.Incoming = append(t.Incoming, producers[i]...)

		// Outputs: split consumers into 1-2 slots; a slot may multicast.
		cs := consumers[i]
		if len(cs) == 0 {
			t.Outgoing = [][]core.TaskId{{}}
		} else if len(cs) == 1 || rng.Intn(2) == 0 {
			t.Outgoing = [][]core.TaskId{cs}
		} else {
			cut := 1 + rng.Intn(len(cs)-1)
			t.Outgoing = [][]core.TaskId{cs[:cut], cs[cut:]}
		}
		tasks[i] = t
	}
	return core.NewExplicitGraph(tasks)
}

// mixCallback hashes the inputs together with the task id and emits one
// deterministic digest per output slot.
func mixCallback(g core.TaskGraph) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		h := sha256.New()
		var idb [8]byte
		binary.LittleEndian.PutUint64(idb[:], uint64(id))
		h.Write(idb[:])
		for _, p := range in {
			w, err := p.Wire()
			if err != nil {
				return nil, err
			}
			h.Write(w)
		}
		base := h.Sum(nil)
		t, _ := g.Task(id)
		out := make([]core.Payload, len(t.Outgoing))
		for s := range out {
			buf := make([]byte, len(base)+1)
			copy(buf, base)
			buf[len(base)] = byte(s)
			out[s] = core.Buffer(buf)
		}
		return out, nil
	}
}

// externalInputsFor synthesizes one payload per ExternalInput slot.
func externalInputsFor(g core.TaskGraph) map[core.TaskId][]core.Payload {
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range g.TaskIds() {
		t, _ := g.Task(id)
		n := 0
		for _, in := range t.Incoming {
			if in == core.ExternalInput {
				n++
			}
		}
		for j := 0; j < n; j++ {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, uint64(id)*31+uint64(j))
			initial[id] = append(initial[id], core.Buffer(b))
		}
	}
	return initial
}

// allControllers instantiates the full suite for a graph and shard count.
func allControllers(g core.TaskGraph, shards int) map[string]core.Controller {
	m := core.NewGraphMap(shards, g)
	out := make(map[string]core.Controller)

	ser := core.NewSerial()
	ser.Initialize(g, nil)
	out["serial"] = ser

	mc := mpi.New()
	mc.Initialize(g, m)
	out["mpi"] = mc

	inline := mpi.New(mpi.WithInline(true))
	inline.Initialize(g, m)
	out["mpi-inline"] = inline

	alws := mpi.New(mpi.WithAlwaysSerialize(true), mpi.WithWorkers(2))
	alws.Initialize(g, m)
	out["mpi-serialize"] = alws

	fifo := mpi.New(mpi.WithFIFO(true), mpi.WithWorkers(2))
	fifo.Initialize(g, m)
	out["mpi-fifo"] = fifo

	nosteal := mpi.New(mpi.WithNoSteal(true))
	nosteal.Initialize(g, m)
	out["mpi-nosteal"] = nosteal

	w1 := mpi.New(mpi.WithWorkers(1))
	w1.Initialize(g, m)
	out["mpi-w1"] = w1

	cc := charm.New(charm.Options{PEs: shards, LBPeriod: 1})
	cc.Initialize(g, nil)
	out["charm-lb1"] = cc

	cc2 := charm.New(charm.Options{PEs: shards})
	cc2.Initialize(g, nil)
	out["charm-nolb"] = cc2

	sp := legion.NewSPMD(legion.Options{})
	sp.Initialize(g, m)
	out["legion-spmd"] = sp

	il := legion.NewIndexLaunch(legion.Options{Workers: 2})
	il.Initialize(g, nil)
	out["legion-il"] = il
	return out
}

// TestRandomDAGConformance is the cross-controller fuzz: 20 random DAGs of
// varying size, each executed on 11 controller configurations (including
// the scheduler ablations: FIFO dispatch, stealing off, single worker) at
// several shard counts; all sink outputs must be byte-identical to the
// serial reference.
func TestRandomDAGConformance(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		seed := uint64(1000 + trial)
		n := 5 + trial*4
		g := randomDAG(n, seed)
		if err := core.Validate(g); err != nil {
			t.Fatalf("trial %d: generated invalid graph: %v", trial, err)
		}
		cb := mixCallback(g)
		initial := externalInputsFor(g)

		// Serial reference.
		ser := core.NewSerial()
		ser.Initialize(g, nil)
		for _, cid := range g.Callbacks() {
			ser.RegisterCallback(cid, cb)
		}
		want, err := ser.Run(initial)
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}

		shards := 1 + trial%5
		for name, c := range allControllers(g, shards) {
			if name == "serial" {
				continue
			}
			t.Run(fmt.Sprintf("trial%d/%s", trial, name), func(t *testing.T) {
				for _, cid := range g.Callbacks() {
					if err := c.RegisterCallback(cid, cb); err != nil {
						t.Fatal(err)
					}
				}
				got, err := c.Run(initial)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("sink count %d, want %d", len(got), len(want))
				}
				for id, ws := range want {
					gs := got[id]
					if len(gs) != len(ws) {
						t.Fatalf("task %d: %d payloads, want %d", id, len(gs), len(ws))
					}
					for i := range ws {
						wb, _ := ws[i].Wire()
						gb, _ := gs[i].Wire()
						if !bytes.Equal(wb, gb) {
							t.Errorf("task %d sink %d differs", id, i)
						}
					}
				}
			})
		}
	}
}

// TestRandomDAGStructure sanity-checks the generator itself.
func TestRandomDAGStructure(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g := randomDAG(30, seed)
		if err := core.Validate(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(core.Leaves(g)) == 0 {
			t.Fatalf("seed %d: no leaves", seed)
		}
		if len(core.Roots(g)) == 0 {
			t.Fatalf("seed %d: no sinks", seed)
		}
	}
}
