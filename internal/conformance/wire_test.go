package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// connectWireMesh bootstraps one TCP fabric per rank over loopback,
// exactly as n separate processes would, but in-process so the conformance
// suite can drive real sockets without forking.
func connectWireMesh(t *testing.T, n int, fp core.Fingerprint, opt wire.Options) []*wire.Fabric {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fabrics := make([]*wire.Fabric, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		o := opt
		o.Rank, o.Ranks, o.Addr, o.Fingerprint = r, n, ln.Addr().String(), fp
		if r == 0 {
			o.Listener = ln
		}
		wg.Add(1)
		go func(r int, o wire.Options) {
			defer wg.Done()
			fabrics[r], errs[r] = wire.Connect(o)
		}(r, o)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, f := range fabrics {
			if f != nil {
				f.Kill()
			}
		}
	})
	return fabrics
}

// partitionInitial splits global external inputs into per-rank maps, the
// shape each process feeds its own RunRank.
func partitionInitial(m core.TaskMap, initial map[core.TaskId][]core.Payload) []map[core.TaskId][]core.Payload {
	parts := make([]map[core.TaskId][]core.Payload, m.ShardCount())
	for r := range parts {
		parts[r] = make(map[core.TaskId][]core.Payload)
	}
	for id, ps := range initial {
		parts[m.Shard(id)][id] = ps
	}
	return parts
}

// registerAll binds cb to every callback id the graph declares — the
// uniform-callback shape most conformance workloads use. Workloads with
// heterogeneous callbacks (the iterative registration loop binds a body
// callback plus the decision callback) pass their own register function to
// the *Reg runner variants instead.
func registerAll(g core.TaskGraph, cb core.Callback) func(core.CallbackRegistrar) error {
	return func(c core.CallbackRegistrar) error {
		for _, cid := range g.Callbacks() {
			if err := c.RegisterCallback(cid, cb); err != nil {
				return err
			}
		}
		return nil
	}
}

// runOverWire executes the graph on the MPI controller with every rank on
// its own loopback fabric at the given transport tier and merges the
// per-rank sink outputs.
func runOverWire(t *testing.T, g core.TaskGraph, m core.TaskMap, cb core.Callback, initial map[core.TaskId][]core.Payload, tier wire.Tier) map[core.TaskId][]core.Payload {
	t.Helper()
	return runOverWireReg(t, g, m, registerAll(g, cb), initial, tier)
}

// runOverWireReg is runOverWire with an explicit callback-registration
// function instead of one callback for every id.
func runOverWireReg(t *testing.T, g core.TaskGraph, m core.TaskMap, reg func(core.CallbackRegistrar) error, initial map[core.TaskId][]core.Payload, tier wire.Tier) map[core.TaskId][]core.Payload {
	t.Helper()
	ranks := m.ShardCount()
	ctrl := mpi.New()
	if err := ctrl.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	if err := reg(ctrl); err != nil {
		t.Fatal(err)
	}
	fabrics := connectWireMesh(t, ranks, ctrl.Fingerprint(), wire.Options{Tier: tier})
	parts := partitionInitial(m, initial)

	results := make([]map[core.TaskId][]core.Payload, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = ctrl.RunRank(r, fabrics[r], parts[r])
			if errs[r] == nil {
				errs[r] = fabrics[r].Shutdown(30 * time.Second)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	merged := make(map[core.TaskId][]core.Payload)
	for _, res := range results {
		for id, ps := range res {
			merged[id] = ps
		}
	}
	return merged
}

func assertSameSinks(t *testing.T, want, got map[core.TaskId][]core.Payload) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sink count %d, want %d", len(got), len(want))
	}
	for id, ws := range want {
		gs := got[id]
		if len(gs) != len(ws) {
			t.Fatalf("task %d: %d payloads, want %d", id, len(gs), len(ws))
		}
		for i := range ws {
			wb, _ := ws[i].Wire()
			gb, _ := gs[i].Wire()
			if !bytes.Equal(wb, gb) {
				t.Errorf("task %d sink %d differs", id, i)
			}
		}
	}
}

func serialReference(t *testing.T, g core.TaskGraph, cb core.Callback, initial map[core.TaskId][]core.Payload) map[core.TaskId][]core.Payload {
	t.Helper()
	return serialReferenceReg(t, g, registerAll(g, cb), initial)
}

func serialReferenceReg(t *testing.T, g core.TaskGraph, reg func(core.CallbackRegistrar) error, initial map[core.TaskId][]core.Payload) map[core.TaskId][]core.Payload {
	t.Helper()
	ser := core.NewSerial()
	ser.Initialize(g, nil)
	if err := reg(ser); err != nil {
		t.Fatal(err)
	}
	want, err := ser.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// conformanceTiers enumerates the transport tiers every wire conformance
// sweep must pass with byte-identical results: forced TCP (the cross-host
// path), forced unix-domain sockets, and forced shared-memory rings (the
// same-host paths). TierAuto needs no row of its own — in-process ranks
// are co-located, so auto resolves to the shm path these sweeps already
// pin.
var conformanceTiers = []struct {
	name string
	tier wire.Tier
}{
	{"tcp", wire.TierTCP},
	{"unix", wire.TierUnix},
	{"shm", wire.TierShm},
}

// TestWireFigureWorkloads runs every figure communication pattern of the
// paper on the MPI controller over real loopback sockets with 4 ranks, at
// each transport tier, and checks the sinks byte-for-byte against the serial
// reference.
func TestWireFigureWorkloads(t *testing.T) {
	mk := func(g core.TaskGraph, err error) core.TaskGraph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := map[string]core.TaskGraph{
		"reduction":  mk(graphAsTaskGraph(graphs.NewReduction(8, 2))),
		"broadcast":  mk(graphAsTaskGraph(graphs.NewBroadcast(8, 2))),
		"binaryswap": mk(graphAsTaskGraph(graphs.NewBinarySwap(8))),
		"kwaymerge":  mk(graphAsTaskGraph(graphs.NewKWayMerge(8, 2))),
		"neighbor3d": mk(graphAsTaskGraph(graphs.NewNeighbor3D(2, 2, 2))),
	}
	for name, g := range cases {
		for _, tc := range conformanceTiers {
			name, g, tc := name, g, tc
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				t.Parallel()
				cb := mixCallback(g)
				initial := externalInputsFor(g)
				want := serialReference(t, g, cb, initial)
				got := runOverWire(t, g, core.NewGraphMap(4, g), cb, initial, tc.tier)
				assertSameSinks(t, want, got)
			})
		}
	}
}

// graphAsTaskGraph adapts the (concrete graph, error) constructor returns.
func graphAsTaskGraph[G core.TaskGraph](g G, err error) (core.TaskGraph, error) {
	return g, err
}

// TestWireRandomDAGConformance is the socket analogue of the
// cross-controller fuzz: random DAGs executed over 4 real loopback fabrics
// (TierAuto — the default tier selection) must match the serial reference
// byte-for-byte. Alternating trials force TCP so the fuzz also covers the
// cross-host framing path.
func TestWireRandomDAGConformance(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		tier := wire.TierAuto
		if trial%2 == 1 {
			tier = wire.TierTCP
		}
		t.Run(fmt.Sprintf("trial%d_%s", trial, tier), func(t *testing.T) {
			t.Parallel()
			g := randomDAG(6+trial*7, uint64(4000+trial))
			if err := core.Validate(g); err != nil {
				t.Fatal(err)
			}
			cb := mixCallback(g)
			initial := externalInputsFor(g)
			want := serialReference(t, g, cb, initial)
			got := runOverWire(t, g, core.NewGraphMap(4, g), cb, initial, tier)
			assertSameSinks(t, want, got)
		})
	}
}

// TestWireKilledRankFailsTyped kills one rank after the handshake and
// before it contributes its inputs: the surviving ranks must unwind with a
// typed peer-loss error well within the heartbeat budget — no hang, no
// panic, no partial success.
func TestWireKilledRankFailsTyped(t *testing.T) {
	g, err := graphs.NewReduction(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewGraphMap(4, g)
	ctrl := mpi.New()
	if err := ctrl.Initialize(g, m); err != nil {
		t.Fatal(err)
	}
	cb := mixCallback(g)
	for _, cid := range g.Callbacks() {
		if err := ctrl.RegisterCallback(cid, cb); err != nil {
			t.Fatal(err)
		}
	}
	fabrics := connectWireMesh(t, 4, ctrl.Fingerprint(), wire.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  250 * time.Millisecond,
	})
	parts := partitionInitial(m, externalInputsFor(g))

	const dead = 3
	fabrics[dead].Kill()

	errs := make([]error, 3)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = ctrl.RunRank(r, fabrics[r], parts[r])
		}(r)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("survivors still blocked 10s after peer death")
	}
	lost := 0
	for r, err := range errs {
		if err == nil {
			// A rank whose local sub-graph needed nothing from the dead rank
			// may legitimately finish; at least one must observe the loss.
			continue
		}
		if !errors.Is(err, wire.ErrPeerLost) && !errors.Is(err, fabric.ErrClosed) {
			t.Errorf("rank %d failed with untyped error: %v", r, err)
		}
		if errors.Is(err, wire.ErrPeerLost) {
			lost++
		}
	}
	if lost == 0 {
		t.Error("no surviving rank reported ErrPeerLost")
	}
}
