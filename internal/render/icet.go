package render

import (
	"fmt"
	"sort"

	"github.com/babelflow/babelflow-go/internal/data"
)

// IceT is the specialized sort-last compositing baseline of §V-B: a direct,
// hand-coded compositor without the generic framework's task abstraction,
// de/serialization or thread hand-off. To provide a fair comparison the
// paper disabled IceT's interlacing and background filtering; likewise this
// baseline exchanges dense images.
//
// IceT here composites with the same binary tree or binary-swap schedule as
// the dataflows, but executed directly over in-memory images.
type IceT struct {
	cfg Config
}

// NewIceT returns the baseline compositor for a pipeline configuration.
func NewIceT(cfg Config) *IceT { return &IceT{cfg: cfg} }

// RenderAndCompositeTree renders every block and composites them with a
// binary reduction tree, returning the final frame.
func (i *IceT) RenderAndCompositeTree(f *data.Field) (*Image, error) {
	images, err := i.renderAll(f)
	if err != nil {
		return nil, err
	}
	return CompositeTree(images)
}

// RenderAndCompositeSwap renders every block and composites them with the
// binary-swap schedule, returning the n tiles sorted by frame position.
func (i *IceT) RenderAndCompositeSwap(f *data.Field) ([]*Image, error) {
	images, err := i.renderAll(f)
	if err != nil {
		return nil, err
	}
	return CompositeSwap(images)
}

func (i *IceT) renderAll(f *data.Field) ([]*Image, error) {
	n := i.cfg.Decomp.Blocks()
	images := make([]*Image, n)
	for b := 0; b < n; b++ {
		blk, err := i.cfg.Decomp.Extract(f, b)
		if err != nil {
			return nil, err
		}
		images[b] = RenderBlock(i.cfg.Camera, i.cfg.TF, i.cfg.Decomp, b, blk)
	}
	return images, nil
}

// CompositeTree composites images pairwise along a binary tree over the
// input order (adjacent ranges first), the schedule of the reduction
// dataflow.
func CompositeTree(images []*Image) (*Image, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("render: no images to composite")
	}
	level := images
	for len(level) > 1 {
		next := make([]*Image, 0, (len(level)+1)/2)
		for j := 0; j < len(level); j += 2 {
			if j+1 == len(level) {
				next = append(next, level[j])
				continue
			}
			if err := level[j].Over(level[j+1]); err != nil {
				return nil, err
			}
			next = append(next, level[j])
		}
		level = next
	}
	return level[0], nil
}

// CompositeSwap runs the binary-swap schedule directly: log2(n) rounds of
// pairwise split-and-exchange. It returns one tile per participant,
// ordered by participant index. The participant count must be a power of
// two.
func CompositeSwap(images []*Image) ([]*Image, error) {
	n := len(images)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("render: binary swap needs a power-of-two image count, got %d", n)
	}
	cur := make([]*Image, n)
	copy(cur, images)
	for bit := 1; bit < n; bit <<= 1 {
		next := make([]*Image, n)
		halves := make([][2]*Image, n) // keep, send per participant
		for i := 0; i < n; i++ {
			a, b := cur[i].SplitHorizontal()
			if i&bit == 0 {
				halves[i] = [2]*Image{a, b}
			} else {
				halves[i] = [2]*Image{b, a}
			}
		}
		for i := 0; i < n; i++ {
			keep := halves[i][0]
			recv := halves[i^bit][1]
			if err := keep.Over(recv); err != nil {
				return nil, err
			}
			next[i] = keep
		}
		cur = next
	}
	sort.SliceStable(cur, func(a, b int) bool {
		if cur[a].Y0 != cur[b].Y0 {
			return cur[a].Y0 < cur[b].Y0
		}
		return cur[a].X0 < cur[b].X0
	})
	return cur, nil
}

// AssembleTiles pastes binary-swap tiles back into one frame.
func AssembleTiles(tiles []*Image, width, height int) (*Image, error) {
	out := NewImage(width, height, 0, 0)
	for _, t := range tiles {
		for y := 0; y < t.Height; y++ {
			gy := t.Y0 + y
			if gy < 0 || gy >= height {
				return nil, fmt.Errorf("render: tile row %d outside frame", gy)
			}
			for x := 0; x < t.Width; x++ {
				gx := t.X0 + x
				r, g, b, a := t.At(x, y)
				out.SetPixel(gx, gy, r, g, b, a, t.Depth[y*t.Width+x])
			}
		}
	}
	return out, nil
}
