// Package render implements the paper's second use case (§V-B): a
// distributed rendering pipeline with a volume-rendering stage (the paper
// uses VTK's SmartVolumeMapper; here a software ray-caster over the same
// block decomposition) and an image-compositing stage implemented as either
// a reduction dataflow or a binary-swap dataflow, compared against an
// IceT-style direct compositor.
package render

import (
	"fmt"
	"math"
)

// Image is an RGBA + depth image. Compositing uses the alpha channel
// (premultiplied colors, front-to-back OVER) and the depth of the nearest
// contribution for ordering.
type Image struct {
	Width, Height int
	// X0, Y0 anchor the image within the full frame; tiles produced by
	// binary swap cover sub-rectangles.
	X0, Y0 int
	// Pixels holds r, g, b, a quadruples, premultiplied.
	Pixels []float32
	// Depth holds the depth of the nearest sample per pixel; +Inf where
	// empty.
	Depth []float32
}

// NewImage allocates a transparent image anchored at (x0, y0).
func NewImage(w, h, x0, y0 int) *Image {
	img := &Image{Width: w, Height: h, X0: x0, Y0: y0,
		Pixels: make([]float32, 4*w*h), Depth: make([]float32, w*h)}
	for i := range img.Depth {
		img.Depth[i] = float32(math.Inf(1))
	}
	return img
}

// At returns the premultiplied RGBA at local pixel (x, y).
func (im *Image) At(x, y int) (r, g, b, a float32) {
	i := 4 * (y*im.Width + x)
	return im.Pixels[i], im.Pixels[i+1], im.Pixels[i+2], im.Pixels[i+3]
}

// SetPixel stores a premultiplied RGBA sample with its depth.
func (im *Image) SetPixel(x, y int, r, g, b, a, depth float32) {
	i := 4 * (y*im.Width + x)
	im.Pixels[i], im.Pixels[i+1], im.Pixels[i+2], im.Pixels[i+3] = r, g, b, a
	im.Depth[y*im.Width+x] = depth
}

// Over composites src over dst pixel-by-pixel using depth ordering: the
// image whose fragment is nearer contributes first. Both images must have
// identical geometry. The result is written into dst.
func (dst *Image) Over(src *Image) error {
	if dst.Width != src.Width || dst.Height != src.Height || dst.X0 != src.X0 || dst.Y0 != src.Y0 {
		return fmt.Errorf("render: compositing geometry mismatch: %dx%d@%d,%d vs %dx%d@%d,%d",
			dst.Width, dst.Height, dst.X0, dst.Y0, src.Width, src.Height, src.X0, src.Y0)
	}
	for p := 0; p < dst.Width*dst.Height; p++ {
		df, db := dst.Depth[p], src.Depth[p]
		i := 4 * p
		fr, fg, fb, fa := dst.Pixels[i], dst.Pixels[i+1], dst.Pixels[i+2], dst.Pixels[i+3]
		br, bg, bb, ba := src.Pixels[i], src.Pixels[i+1], src.Pixels[i+2], src.Pixels[i+3]
		if db < df {
			fr, fg, fb, fa, br, bg, bb, ba = br, bg, bb, ba, fr, fg, fb, fa
			dst.Depth[p] = db
		}
		// front OVER back with premultiplied alpha.
		dst.Pixels[i] = fr + (1-fa)*br
		dst.Pixels[i+1] = fg + (1-fa)*bg
		dst.Pixels[i+2] = fb + (1-fa)*bb
		dst.Pixels[i+3] = fa + (1-fa)*ba
	}
	return nil
}

// SplitHorizontal cuts the image into two halves along y (top rows first),
// used by the binary-swap exchange. Odd heights give the extra row to the
// first half.
func (im *Image) SplitHorizontal() (*Image, *Image) {
	h1 := (im.Height + 1) / 2
	h2 := im.Height - h1
	a := NewImage(im.Width, h1, im.X0, im.Y0)
	b := NewImage(im.Width, h2, im.X0, im.Y0+h1)
	copy(a.Pixels, im.Pixels[:4*im.Width*h1])
	copy(a.Depth, im.Depth[:im.Width*h1])
	copy(b.Pixels, im.Pixels[4*im.Width*h1:])
	copy(b.Depth, im.Depth[im.Width*h1:])
	return a, b
}

// Serialize encodes the image: width, height, x0, y0 as int32, then pixels
// and depth as float32 bits.
func (im *Image) Serialize() []byte {
	n := im.Width * im.Height
	buf := make([]byte, 16+4*(4*n+n))
	putI32(buf[0:], int32(im.Width))
	putI32(buf[4:], int32(im.Height))
	putI32(buf[8:], int32(im.X0))
	putI32(buf[12:], int32(im.Y0))
	off := 16
	for _, v := range im.Pixels {
		putI32(buf[off:], int32(math.Float32bits(v)))
		off += 4
	}
	for _, v := range im.Depth {
		putI32(buf[off:], int32(math.Float32bits(v)))
		off += 4
	}
	return buf
}

// DeserializeImage decodes an image encoded by Serialize.
func DeserializeImage(b []byte) (*Image, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("render: image buffer too short (%d bytes)", len(b))
	}
	w, h := int(getI32(b[0:])), int(getI32(b[4:]))
	x0, y0 := int(getI32(b[8:])), int(getI32(b[12:]))
	n := w * h
	if w < 0 || h < 0 || len(b) != 16+4*(4*n+n) {
		return nil, fmt.Errorf("render: image buffer size %d does not match %dx%d", len(b), w, h)
	}
	im := NewImage(w, h, x0, y0)
	off := 16
	for i := 0; i < 4*n; i++ {
		im.Pixels[i] = math.Float32frombits(uint32(getI32(b[off:])))
		off += 4
	}
	for i := 0; i < n; i++ {
		im.Depth[i] = math.Float32frombits(uint32(getI32(b[off:])))
		off += 4
	}
	return im, nil
}

// Equal reports pixel- and geometry-identical images.
func (im *Image) Equal(o *Image) bool {
	if im.Width != o.Width || im.Height != o.Height || im.X0 != o.X0 || im.Y0 != o.Y0 {
		return false
	}
	for i := range im.Pixels {
		if im.Pixels[i] != o.Pixels[i] {
			return false
		}
	}
	for i := range im.Depth {
		a, b := im.Depth[i], o.Depth[i]
		if a != b && !(math.IsInf(float64(a), 1) && math.IsInf(float64(b), 1)) {
			return false
		}
	}
	return true
}

// WritePPM renders the image to a binary PPM (P6), compositing against a
// black background; the standard quick-look output (Fig. 10d analogue).
func (im *Image) WritePPM() []byte {
	header := fmt.Sprintf("P6\n%d %d\n255\n", im.Width, im.Height)
	out := make([]byte, 0, len(header)+3*im.Width*im.Height)
	out = append(out, header...)
	clamp := func(v float32) byte {
		if v <= 0 {
			return 0
		}
		if v >= 1 {
			return 255
		}
		return byte(v * 255)
	}
	for p := 0; p < im.Width*im.Height; p++ {
		out = append(out, clamp(im.Pixels[4*p]), clamp(im.Pixels[4*p+1]), clamp(im.Pixels[4*p+2]))
	}
	return out
}

func putI32(b []byte, v int32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getI32(b []byte) int32 {
	return int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}
