package render

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
)

// Config binds the rendering pipeline to a domain: the block decomposition
// of the volume, the camera and the transfer function.
type Config struct {
	Decomp *data.Decomposition
	Camera Camera
	TF     TransferFunction
}

// asImage extracts an image from a payload.
func asImage(p core.Payload) (*Image, error) {
	if p.Object != nil {
		im, ok := p.Object.(*Image)
		if !ok {
			return nil, fmt.Errorf("render: payload object is %T, want *Image", p.Object)
		}
		return im, nil
	}
	return DeserializeImage(p.Data)
}

// asField extracts a field from a payload.
func asField(p core.Payload) (*data.Field, error) {
	if p.Object != nil {
		f, ok := p.Object.(*data.Field)
		if !ok {
			return nil, fmt.Errorf("render: payload object is %T, want *data.Field", p.Object)
		}
		return f, nil
	}
	return data.DeserializeField(p.Data)
}

// InitialInputs extracts every block of the volume and addresses it to the
// corresponding leaf task of a reduction or binary-swap dataflow whose leaf
// i has task id leafIds[i].
func (cfg Config) InitialInputs(f *data.Field, leafIds []core.TaskId) (map[core.TaskId][]core.Payload, error) {
	if len(leafIds) != cfg.Decomp.Blocks() {
		return nil, fmt.Errorf("render: %d leaf tasks for %d blocks", len(leafIds), cfg.Decomp.Blocks())
	}
	initial := make(map[core.TaskId][]core.Payload, len(leafIds))
	for i, id := range leafIds {
		blk, err := cfg.Decomp.Extract(f, i)
		if err != nil {
			return nil, err
		}
		initial[id] = []core.Payload{core.Object(blk)}
	}
	return initial, nil
}

// RegisterReduction binds the volume-rendering + reduction-compositing
// callbacks (Listing 1 of the paper: volume_render at the leaves, composite
// at internal nodes, write_image — here: emit the final image — at the
// root) to a controller initialized with the reduction graph.
func (cfg Config) RegisterReduction(c core.CallbackRegistrar, g *graphs.Reduction) error {
	if err := cfg.check(g.Leafs()); err != nil {
		return err
	}
	first := g.FirstLeaf()
	leaf := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		blk, err := asField(in[0])
		if err != nil {
			return nil, err
		}
		img := RenderBlock(cfg.Camera, cfg.TF, cfg.Decomp, int(id-first), blk)
		return []core.Payload{core.Object(img)}, nil
	}
	if err := c.RegisterCallback(graphs.ReduceLeafCB, leaf); err != nil {
		return err
	}
	composite := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		acc, err := asImage(in[0])
		if err != nil {
			return nil, err
		}
		for _, p := range in[1:] {
			im, err := asImage(p)
			if err != nil {
				return nil, err
			}
			if err := acc.Over(im); err != nil {
				return nil, err
			}
		}
		return []core.Payload{core.Object(acc)}, nil
	}
	if err := c.RegisterCallback(graphs.ReduceMidCB, composite); err != nil {
		return err
	}
	return c.RegisterCallback(graphs.ReduceRootCB, composite)
}

// RegisterBinarySwap binds the volume-rendering + binary-swap-compositing
// callbacks (Fig. 7) to a controller initialized with the binary-swap
// graph. After log2(n) exchange rounds, each final task emits one tile of
// the frame.
func (cfg Config) RegisterBinarySwap(c core.CallbackRegistrar, g *graphs.BinarySwap) error {
	if err := cfg.check(g.Participants()); err != nil {
		return err
	}

	// keepSend splits an image for the exchange after round r: the task
	// whose bit r is 0 keeps the top half, its partner the bottom half.
	keepSend := func(im *Image, round, index int) (keep, send *Image) {
		a, b := im.SplitHorizontal()
		if (index>>round)&1 == 0 {
			return a, b
		}
		return b, a
	}

	leaf := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		blk, err := asField(in[0])
		if err != nil {
			return nil, err
		}
		_, i := g.RoundOf(id)
		img := RenderBlock(cfg.Camera, cfg.TF, cfg.Decomp, i, blk)
		if g.Rounds() == 0 {
			return []core.Payload{core.Object(img)}, nil
		}
		keep, send := keepSend(img, 0, i)
		return []core.Payload{core.Object(keep), core.Object(send)}, nil
	}
	mid := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		r, i := g.RoundOf(id)
		acc, err := asImage(in[0])
		if err != nil {
			return nil, err
		}
		other, err := asImage(in[1])
		if err != nil {
			return nil, err
		}
		if err := acc.Over(other); err != nil {
			return nil, err
		}
		keep, send := keepSend(acc, r, i)
		return []core.Payload{core.Object(keep), core.Object(send)}, nil
	}
	final := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		if len(in) == 1 {
			// Degenerate single-participant graph: render directly.
			return leaf(in, id)
		}
		acc, err := asImage(in[0])
		if err != nil {
			return nil, err
		}
		other, err := asImage(in[1])
		if err != nil {
			return nil, err
		}
		if err := acc.Over(other); err != nil {
			return nil, err
		}
		return []core.Payload{core.Object(acc)}, nil
	}
	if err := c.RegisterCallback(graphs.SwapLeafCB, leaf); err != nil {
		return err
	}
	if err := c.RegisterCallback(graphs.SwapMidCB, mid); err != nil {
		return err
	}
	return c.RegisterCallback(graphs.SwapRootCB, final)
}

func (cfg Config) check(leafs int) error {
	if cfg.Decomp == nil {
		return fmt.Errorf("render: Config.Decomp is required")
	}
	if cfg.Decomp.Blocks() != leafs {
		return fmt.Errorf("render: decomposition has %d blocks but dataflow has %d leaves", cfg.Decomp.Blocks(), leafs)
	}
	if cfg.Camera.Width < 1 || cfg.Camera.Height < 1 {
		return fmt.Errorf("render: camera dimensions %dx%d invalid", cfg.Camera.Width, cfg.Camera.Height)
	}
	return nil
}
