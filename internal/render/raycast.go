package render

import (
	"math"

	"github.com/babelflow/babelflow-go/internal/data"
)

// TransferFunction maps scalar values to premultiplied color and opacity.
// The mapping is a deterministic piecewise-linear ramp, so every runtime
// produces bit-identical samples.
type TransferFunction struct {
	// Lo, Hi bound the visible scalar range; values below Lo are fully
	// transparent.
	Lo, Hi float32
	// Opacity scales per-sample alpha (the emission/absorption step size).
	Opacity float32
}

// Sample returns the premultiplied RGBA contribution of one scalar sample.
func (tf TransferFunction) Sample(v float32) (r, g, b, a float32) {
	if v < tf.Lo || tf.Hi <= tf.Lo {
		return 0, 0, 0, 0
	}
	t := (v - tf.Lo) / (tf.Hi - tf.Lo)
	if t > 1 {
		t = 1
	}
	a = t * tf.Opacity
	if a > 1 {
		a = 1
	}
	// Blue-to-red ramp, premultiplied.
	r = t * a
	g = 0.2 * a
	b = (1 - t) * a
	return r, g, b, a
}

// Camera is the orthographic view of the pipeline: rays travel along +Z and
// pixel (px, py) maps to the voxel column (px*NX/W, py*NY/H). The paper's
// rendering stage is embarrassingly parallel for any fixed view; a single
// axis-aligned view keeps distributed and serial results comparable.
type Camera struct {
	Width, Height int
}

// column maps a pixel to its voxel column in an nx*ny domain.
func (c Camera) column(px, py, nx, ny int) (x, y int) {
	return px * nx / c.Width, py * ny / c.Height
}

// RenderBlock volume-renders the core region of one decomposition block
// into a full-frame image: pixels whose voxel column falls outside the
// block's core stay transparent. The block field includes the ghost layer;
// samples are taken at the core's integer z planes, so compositing all
// blocks reproduces the full-domain integral exactly.
func RenderBlock(cam Camera, tf TransferFunction, d *data.Decomposition, blockIndex int, block *data.Field) *Image {
	img := NewImage(cam.Width, cam.Height, 0, 0)
	b := d.Block(blockIndex)
	sx, sy, sz := d.NX/d.BXN, d.NY/d.BYN, d.NZ/d.BZN
	// Core region: the ghost-free partition cell [b.X0, b.X0+sx) x ... ;
	// the z sweep covers exactly the core planes, so compositing all
	// blocks integrates every domain plane once.
	coreX1, coreY1 := b.X0+sx, b.Y0+sy
	zEnd := b.Z0 + sz
	for py := 0; py < cam.Height; py++ {
		for px := 0; px < cam.Width; px++ {
			gx, gy := cam.column(px, py, d.NX, d.NY)
			if gx < b.X0 || gx >= coreX1 || gy < b.Y0 || gy >= coreY1 {
				continue
			}
			var cr, cg, cb, ca float32
			depth := float32(math.Inf(1))
			for z := b.Z0; z < zEnd; z++ {
				v := block.At(gx-b.X0, gy-b.Y0, z-b.Z0)
				sr, sg, sb, sa := tf.Sample(v)
				if sa > 0 && math.IsInf(float64(depth), 1) {
					depth = float32(z)
				}
				// Front-to-back OVER accumulation.
				cr += (1 - ca) * sr
				cg += (1 - ca) * sg
				cb += (1 - ca) * sb
				ca += (1 - ca) * sa
			}
			img.SetPixel(px, py, cr, cg, cb, ca, depth)
		}
	}
	return img
}

// RenderFull volume-renders the whole domain serially: the reference result
// the distributed pipeline must reproduce.
func RenderFull(cam Camera, tf TransferFunction, f *data.Field) *Image {
	img := NewImage(cam.Width, cam.Height, 0, 0)
	for py := 0; py < cam.Height; py++ {
		for px := 0; px < cam.Width; px++ {
			gx, gy := cam.column(px, py, f.NX, f.NY)
			var cr, cg, cb, ca float32
			depth := float32(math.Inf(1))
			for z := 0; z < f.NZ; z++ {
				v := f.At(gx, gy, z)
				sr, sg, sb, sa := tf.Sample(v)
				if sa > 0 && math.IsInf(float64(depth), 1) {
					depth = float32(z)
				}
				cr += (1 - ca) * sr
				cg += (1 - ca) * sg
				cb += (1 - ca) * sb
				ca += (1 - ca) * sa
			}
			img.SetPixel(px, py, cr, cg, cb, ca, depth)
		}
	}
	return img
}
