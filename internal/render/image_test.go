package render

import (
	"math"
	"strings"
	"testing"
)

func TestImageSetAt(t *testing.T) {
	im := NewImage(4, 3, 0, 0)
	im.SetPixel(2, 1, 0.5, 0.25, 0.125, 1, 3)
	r, g, b, a := im.At(2, 1)
	if r != 0.5 || g != 0.25 || b != 0.125 || a != 1 {
		t.Errorf("At = %f %f %f %f", r, g, b, a)
	}
	if im.Depth[1*4+2] != 3 {
		t.Error("depth not stored")
	}
	if !math.IsInf(float64(im.Depth[0]), 1) {
		t.Error("empty pixels should have +Inf depth")
	}
}

func TestOverDepthOrdering(t *testing.T) {
	// A red fragment at depth 1 over a blue at depth 5, in both call
	// orders, must give the same result: red in front.
	front := NewImage(1, 1, 0, 0)
	front.SetPixel(0, 0, 0.6, 0, 0, 0.6, 1) // premultiplied red, a=0.6
	back := NewImage(1, 1, 0, 0)
	back.SetPixel(0, 0, 0, 0, 0.8, 0.8, 5) // premultiplied blue, a=0.8

	a := NewImage(1, 1, 0, 0)
	a.SetPixel(0, 0, 0.6, 0, 0, 0.6, 1)
	if err := a.Over(back); err != nil {
		t.Fatal(err)
	}
	b := NewImage(1, 1, 0, 0)
	b.SetPixel(0, 0, 0, 0, 0.8, 0.8, 5)
	if err := b.Over(front); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Errorf("Over is not order-independent under depth sorting: %v vs %v", a.Pixels, b.Pixels)
	}
	r, _, bl, alpha := a.At(0, 0)
	wantR := float32(0.6)
	wantB := float32((1 - 0.6) * 0.8)
	wantA := float32(0.6 + 0.4*0.8)
	if r != wantR || bl != wantB || alpha != wantA {
		t.Errorf("composite = %f %f %f, want %f %f %f", r, bl, alpha, wantR, wantB, wantA)
	}
	if a.Depth[0] != 1 {
		t.Errorf("composite depth = %f", a.Depth[0])
	}
}

func TestOverGeometryMismatch(t *testing.T) {
	a := NewImage(2, 2, 0, 0)
	b := NewImage(2, 2, 0, 2)
	if err := a.Over(b); err == nil {
		t.Error("mismatched anchors should fail")
	}
	c := NewImage(3, 2, 0, 0)
	if err := a.Over(c); err == nil {
		t.Error("mismatched sizes should fail")
	}
}

func TestSplitHorizontal(t *testing.T) {
	im := NewImage(2, 5, 0, 4)
	for y := 0; y < 5; y++ {
		im.SetPixel(0, y, float32(y), 0, 0, 1, float32(y))
	}
	a, b := im.SplitHorizontal()
	if a.Height != 3 || b.Height != 2 {
		t.Fatalf("split heights = %d, %d", a.Height, b.Height)
	}
	if a.Y0 != 4 || b.Y0 != 7 {
		t.Errorf("anchors = %d, %d", a.Y0, b.Y0)
	}
	if r, _, _, _ := a.At(0, 2); r != 2 {
		t.Error("first half content wrong")
	}
	if r, _, _, _ := b.At(0, 0); r != 3 {
		t.Error("second half content wrong")
	}
}

func TestImageSerializeRoundTrip(t *testing.T) {
	im := NewImage(3, 2, 1, 5)
	im.SetPixel(2, 1, 0.1, 0.2, 0.3, 0.4, 9)
	got, err := DeserializeImage(im.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(got) {
		t.Error("round trip changed the image")
	}
	if _, err := DeserializeImage([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer should fail")
	}
	if _, err := DeserializeImage(im.Serialize()[:20]); err == nil {
		t.Error("truncated buffer should fail")
	}
}

func TestWritePPM(t *testing.T) {
	im := NewImage(2, 2, 0, 0)
	im.SetPixel(0, 0, 1, 0, 0, 1, 0)
	ppm := im.WritePPM()
	if !strings.HasPrefix(string(ppm), "P6\n2 2\n255\n") {
		t.Errorf("header = %q", ppm[:11])
	}
	body := ppm[len("P6\n2 2\n255\n"):]
	if len(body) != 12 {
		t.Fatalf("body length = %d", len(body))
	}
	if body[0] != 255 || body[1] != 0 {
		t.Errorf("pixel 0 = %v", body[:3])
	}
}
