package render

import (
	"math"
	"strings"
	"testing"

	"github.com/babelflow/babelflow-go/internal/charm"
	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/legion"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

func testConfig(t *testing.T, bx, by, bz int) (Config, *data.Field) {
	t.Helper()
	const n = 16
	f := data.SyntheticHCCI(n, n, n, 5, 4242)
	d, err := data.NewDecomposition(n, n, n, bx, by, bz)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Decomp: d,
		Camera: Camera{Width: n, Height: n},
		TF:     TransferFunction{Lo: 0.2, Hi: 1.2, Opacity: 0.3},
	}, f
}

// closeImages compares with a tolerance: different compositing orders
// accumulate different float rounding.
func closeImages(a, b *Image, tol float64) bool {
	if a.Width != b.Width || a.Height != b.Height {
		return false
	}
	for i := range a.Pixels {
		if math.Abs(float64(a.Pixels[i]-b.Pixels[i])) > tol {
			return false
		}
	}
	return true
}

// TestBlockRenderingCompositesToFullRender: rendering per block and
// compositing with the direct tree reproduces the serial full-volume
// render.
func TestBlockRenderingCompositesToFullRender(t *testing.T) {
	cfg, f := testConfig(t, 2, 2, 2)
	want := RenderFull(cfg.Camera, cfg.TF, f)
	got, err := NewIceT(cfg).RenderAndCompositeTree(f)
	if err != nil {
		t.Fatal(err)
	}
	if !closeImages(want, got, 1e-5) {
		t.Error("tree-composited image differs from full render")
	}
	// The image must not be trivially empty.
	var sum float64
	for _, v := range want.Pixels {
		sum += float64(v)
	}
	if sum == 0 {
		t.Fatal("degenerate test: empty image")
	}
}

// TestBinarySwapTilesMatchTreeComposite: binary-swap tiles assembled equal
// the tree-composited frame.
func TestBinarySwapTilesMatchTreeComposite(t *testing.T) {
	cfg, f := testConfig(t, 2, 2, 2)
	icet := NewIceT(cfg)
	tree, err := icet.RenderAndCompositeTree(f)
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := icet.RenderAndCompositeSwap(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 8 {
		t.Fatalf("tiles = %d", len(tiles))
	}
	frame, err := AssembleTiles(tiles, cfg.Camera.Width, cfg.Camera.Height)
	if err != nil {
		t.Fatal(err)
	}
	if !closeImages(tree, frame, 1e-5) {
		t.Error("binary-swap frame differs from tree composite")
	}
}

// TestReductionDataflowMatchesIceT runs the rendering + reduction
// compositing dataflow on every controller and compares to the direct
// baseline (identical schedule, so identical bytes).
func TestReductionDataflowMatchesIceT(t *testing.T) {
	cfg, f := testConfig(t, 2, 2, 2)
	g, err := graphs.NewReduction(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewIceT(cfg).RenderAndCompositeTree(f)
	if err != nil {
		t.Fatal(err)
	}

	m := core.NewModuloMap(4, g.Size())
	cs := map[string]core.Controller{}
	mc := mpi.New()
	mc.Initialize(g, m)
	cs["mpi"] = mc
	cc := charm.New(charm.Options{PEs: 4, LBPeriod: 2})
	cc.Initialize(g, nil)
	cs["charm"] = cc
	sp := legion.NewSPMD(legion.Options{})
	sp.Initialize(g, m)
	cs["legion-spmd"] = sp
	il := legion.NewIndexLaunch(legion.Options{})
	il.Initialize(g, nil)
	cs["legion-il"] = il

	for name, c := range cs {
		t.Run(name, func(t *testing.T) {
			if err := cfg.RegisterReduction(c, g); err != nil {
				t.Fatal(err)
			}
			initial, err := cfg.InitialInputs(f, g.LeafIds())
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.Run(initial)
			if err != nil {
				t.Fatal(err)
			}
			ps, ok := out[g.Root()]
			if !ok || len(ps) != 1 {
				t.Fatalf("missing root image: %v", out)
			}
			wire, err := ps[0].Wire()
			if err != nil {
				t.Fatal(err)
			}
			img, err := DeserializeImage(wire)
			if err != nil {
				t.Fatal(err)
			}
			// The reduction graph pairs adjacent children exactly like the
			// direct tree, so results are bit-identical.
			if !img.Equal(want) {
				t.Error("dataflow image differs from IceT baseline")
			}
		})
	}
}

// TestBinarySwapDataflowMatchesBaseline runs the binary-swap dataflow and
// compares each tile with the direct swap schedule.
func TestBinarySwapDataflowMatchesBaseline(t *testing.T) {
	cfg, f := testConfig(t, 2, 2, 2)
	g, err := graphs.NewBinarySwap(8)
	if err != nil {
		t.Fatal(err)
	}
	wantTiles, err := NewIceT(cfg).RenderAndCompositeSwap(f)
	if err != nil {
		t.Fatal(err)
	}

	mc := mpi.New()
	mc.Initialize(g, core.NewModuloMap(3, g.Size()))
	if err := cfg.RegisterBinarySwap(mc, g); err != nil {
		t.Fatal(err)
	}
	initial, err := cfg.InitialInputs(f, g.LeafIds())
	if err != nil {
		t.Fatal(err)
	}
	out, err := mc.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	var gotTiles []*Image
	for _, id := range g.TileIds() {
		ps := out[id]
		if len(ps) != 1 {
			t.Fatalf("tile task %d: %d payloads", id, len(ps))
		}
		wire, _ := ps[0].Wire()
		img, err := DeserializeImage(wire)
		if err != nil {
			t.Fatal(err)
		}
		gotTiles = append(gotTiles, img)
	}
	frameGot, err := AssembleTiles(gotTiles, cfg.Camera.Width, cfg.Camera.Height)
	if err != nil {
		t.Fatal(err)
	}
	frameWant, err := AssembleTiles(wantTiles, cfg.Camera.Width, cfg.Camera.Height)
	if err != nil {
		t.Fatal(err)
	}
	if !frameGot.Equal(frameWant) {
		t.Error("binary-swap dataflow tiles differ from direct schedule")
	}
}

func TestTransferFunction(t *testing.T) {
	tf := TransferFunction{Lo: 1, Hi: 3, Opacity: 0.5}
	if _, _, _, a := tf.Sample(0.5); a != 0 {
		t.Error("below Lo should be transparent")
	}
	_, _, _, a := tf.Sample(2)
	if a != 0.25 {
		t.Errorf("mid alpha = %f, want 0.25", a)
	}
	_, _, _, a = tf.Sample(100)
	if a != 0.5 {
		t.Errorf("clamped alpha = %f, want 0.5", a)
	}
	bad := TransferFunction{Lo: 2, Hi: 2, Opacity: 1}
	if _, _, _, a := bad.Sample(5); a != 0 {
		t.Error("degenerate range should be transparent")
	}
}

func TestConfigChecks(t *testing.T) {
	cfg, _ := testConfig(t, 2, 2, 2)
	g, _ := graphs.NewReduction(4, 2)
	c := core.NewSerial()
	c.Initialize(g, nil)
	if err := cfg.RegisterReduction(c, g); err == nil {
		t.Error("block-count mismatch should fail")
	}
	bad := cfg
	bad.Camera = Camera{}
	g8, _ := graphs.NewReduction(8, 2)
	c2 := core.NewSerial()
	c2.Initialize(g8, nil)
	if err := bad.RegisterReduction(c2, g8); err == nil {
		t.Error("zero camera should fail")
	}
	if _, err := cfg.InitialInputs(data.NewField(16, 16, 16), []core.TaskId{1, 2}); err == nil {
		t.Error("wrong leaf count should fail")
	}
}

func TestCompositeErrors(t *testing.T) {
	if _, err := CompositeTree(nil); err == nil {
		t.Error("empty composite should fail")
	}
	if _, err := CompositeSwap(make([]*Image, 3)); err == nil {
		t.Error("non-power-of-two swap should fail")
	}
	tiles := []*Image{NewImage(2, 2, 0, 9)}
	if _, err := AssembleTiles(tiles, 4, 4); err == nil {
		t.Error("out-of-frame tile should fail")
	}
}

// TestCompositeTreeOddCount exercises the odd-leaf promotion path.
func TestCompositeTreeOddCount(t *testing.T) {
	imgs := make([]*Image, 3)
	for i := range imgs {
		imgs[i] = NewImage(1, 1, 0, 0)
		imgs[i].SetPixel(0, 0, 0.1, 0.1, 0.1, 0.2, float32(i))
	}
	out, err := CompositeTree(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, a := out.At(0, 0); a <= 0.2 || a > 1 {
		t.Errorf("alpha = %f", a)
	}
}

// TestFig10dImage produces the composited frame of the full pipeline (the
// Fig. 10d analogue) and checks the PPM output is a well-formed, non-empty
// image.
func TestFig10dImage(t *testing.T) {
	cfg, f := testConfig(t, 2, 2, 2)
	frame, err := NewIceT(cfg).RenderAndCompositeTree(f)
	if err != nil {
		t.Fatal(err)
	}
	ppm := frame.WritePPM()
	if !strings.HasPrefix(string(ppm), "P6\n16 16\n255\n") {
		t.Fatalf("bad PPM header: %q", ppm[:14])
	}
	nonzero := 0
	for _, b := range ppm[len("P6\n16 16\n255\n"):] {
		if b != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("composited image is entirely black")
	}
}
