package trace

import (
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/fabric"
)

func TestTransportRecorderMatrix(t *testing.T) {
	rec := InstrumentTransport(fabric.New(3))
	if err := rec.Send(fabric.Message{From: 0, To: 1, Payload: core.Buffer(make([]byte, 10))}); err != nil {
		t.Fatal(err)
	}
	if err := rec.SendN([]fabric.Message{
		{From: 0, To: 1, Payload: core.Buffer(make([]byte, 20))},
		{From: 1, To: 2, Payload: core.Buffer(make([]byte, 30))},
		{From: 2, To: 2, Payload: core.Buffer(make([]byte, 99))}, // self-send: not traffic
	}); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := rec.Matrix()
	if msgs[Link{0, 1}] != 2 || bytes[Link{0, 1}] != 30 {
		t.Errorf("link 0->1 = %d msgs / %d bytes, want 2 / 30", msgs[Link{0, 1}], bytes[Link{0, 1}])
	}
	if msgs[Link{1, 2}] != 1 || bytes[Link{1, 2}] != 30 {
		t.Errorf("link 1->2 = %d msgs / %d bytes, want 1 / 30", msgs[Link{1, 2}], bytes[Link{1, 2}])
	}
	if _, ok := msgs[Link{2, 2}]; ok {
		t.Error("self-send recorded as traffic")
	}
	// The decorator must not disturb delivery.
	got := 0
	for {
		if _, ok := rec.tr.(*fabric.Fabric).TryRecv(1); !ok {
			break
		}
		got++
	}
	if got != 2 {
		t.Errorf("rank 1 received %d messages, want 2", got)
	}
}

func TestTransportRecorderFailedSendNotCounted(t *testing.T) {
	f := fabric.New(2)
	f.Close(1)
	rec := InstrumentTransport(f)
	if err := rec.Send(fabric.Message{From: 0, To: 1, Payload: core.Buffer(make([]byte, 8))}); err == nil {
		t.Fatal("send to closed rank should fail")
	}
	if msgs, _ := rec.Matrix(); len(msgs) != 0 {
		t.Errorf("failed Send accounted: %v", msgs)
	}
}
