package trace

import (
	"sync"

	"github.com/babelflow/babelflow-go/internal/fabric"
)

// Link identifies one directed rank pair of the traffic matrix.
type Link struct {
	From, To int
}

// TransportRecorder decorates any fabric.Transport with a per-link traffic
// matrix: every successfully sent inter-rank message is attributed to its
// (From, To) pair. Because it consumes the Transport interface rather than a
// concrete fabric, the same recorder observes in-memory runs and TCP runs
// alike, making their communication patterns directly comparable — the
// paper's premise applied to the network layer.
//
// The recorder delegates every Transport method to the wrapped transport;
// receive paths are not instrumented (messages are counted once, on send).
type TransportRecorder struct {
	tr fabric.Transport

	mu    sync.Mutex
	msgs  map[Link]uint64
	bytes map[Link]uint64
}

// InstrumentTransport wraps tr with a traffic recorder.
func InstrumentTransport(tr fabric.Transport) *TransportRecorder {
	return &TransportRecorder{tr: tr, msgs: make(map[Link]uint64), bytes: make(map[Link]uint64)}
}

// accounted is the pre-captured description of one message: payload sizes
// must be read before the transport takes over, while the sender still owns
// the payload (afterwards a receiver may concurrently own and mutate it).
type accounted struct {
	link Link
	size uint64
}

func capture(ms []fabric.Message, scratch []accounted) []accounted {
	for _, m := range ms {
		if m.From == m.To {
			continue // self-sends are memory hand-offs, not traffic
		}
		scratch = append(scratch, accounted{Link{From: m.From, To: m.To}, uint64(m.Payload.Size())})
	}
	return scratch
}

func (r *TransportRecorder) account(as []accounted) {
	r.mu.Lock()
	for _, a := range as {
		r.msgs[a.link]++
		r.bytes[a.link] += a.size
	}
	r.mu.Unlock()
}

// Matrix returns a copy of the per-link message and byte counts.
func (r *TransportRecorder) Matrix() (msgs, bytes map[Link]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	msgs = make(map[Link]uint64, len(r.msgs))
	bytes = make(map[Link]uint64, len(r.bytes))
	for l, n := range r.msgs {
		msgs[l] = n
	}
	for l, n := range r.bytes {
		bytes[l] = n
	}
	return msgs, bytes
}

// Ranks implements fabric.Transport.
func (r *TransportRecorder) Ranks() int { return r.tr.Ranks() }

// Send implements fabric.Transport.
func (r *TransportRecorder) Send(m fabric.Message) error {
	var scratch [1]accounted
	as := capture([]fabric.Message{m}, scratch[:0])
	if err := r.tr.Send(m); err != nil {
		return err
	}
	r.account(as)
	return nil
}

// SendN implements fabric.Transport. A batch that fails mid-way is
// conservatively accounted in full — the transport does not report which
// prefix was delivered, and a failing run is being torn down anyway.
func (r *TransportRecorder) SendN(ms []fabric.Message) error {
	as := capture(ms, nil)
	err := r.tr.SendN(ms)
	r.account(as)
	return err
}

// Recv implements fabric.Transport.
func (r *TransportRecorder) Recv(rank int) (fabric.Message, bool) { return r.tr.Recv(rank) }

// RecvBatch implements fabric.Transport.
func (r *TransportRecorder) RecvBatch(rank int, dst []fabric.Message) (int, bool) {
	return r.tr.RecvBatch(rank, dst)
}

// Close implements fabric.Transport.
func (r *TransportRecorder) Close(rank int) { r.tr.Close(rank) }

// Cancel implements fabric.Transport.
func (r *TransportRecorder) Cancel() { r.tr.Cancel() }

// Err implements fabric.Transport.
func (r *TransportRecorder) Err() error { return r.tr.Err() }

// Snapshot implements fabric.Transport.
func (r *TransportRecorder) Snapshot() fabric.Stats { return r.tr.Snapshot() }

var _ fabric.Transport = (*TransportRecorder)(nil)
