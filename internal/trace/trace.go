// Package trace records per-task execution spans of a dataflow run and
// derives the comparison metrics the paper uses BabelFlow as a test bed
// for: per-shard busy time and utilization, per-task-type cost breakdowns,
// and the measured critical path of the executed graph. Since the framework
// guarantees the same tasks execute on every runtime, traces of different
// controllers are directly comparable.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Span is one task execution: wall-clock start and end of the callback, the
// shard that ran it, and its scheduling context — how long the ready task
// waited in the dispatch queue, and how far off the graph's critical path
// it sits.
type Span struct {
	Task     core.TaskId
	Callback core.CallbackId
	Shard    core.ShardId
	Start    time.Time
	End      time.Time
	// QueueWait is the time between the task becoming ready (entering the
	// dispatch queue) and a worker picking it up. Zero for controllers
	// without a queue (serial, inline) or without a SchedObserver hookup.
	QueueWait time.Duration
	// Slack is the task's critical-path slack in levels (0 = on a critical
	// path). Filled by AnnotateSlack; zero until then.
	Slack int
	// Attempt is the execution attempt that produced this span: 1 for the
	// first run, higher after fault-tolerant re-execution, 0 when the output
	// was replayed from a lineage ledger (no callback ran).
	Attempt int
	// Replayed marks spans whose outputs came from a lineage ledger during
	// recovery instead of a callback execution.
	Replayed bool
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Recorder collects spans. Wrap the callbacks before registering them and
// pass the recorder as the controller's Observer so spans learn their
// shard. Safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	spans    map[core.TaskId]*Span
	order    []core.TaskId
	shards   map[core.TaskId]core.ShardId
	queued   map[core.TaskId]time.Duration
	attempts map[core.TaskId]int
	replays  []Span
	epochs   []RecoveryEvent
}

// RecoveryEvent is one recovery epoch boundary observed by the recorder.
type RecoveryEvent struct {
	// Epoch is the attempt number the run moved to (2 = first retry).
	Epoch int
	// Lost lists the shards declared dead before this epoch.
	Lost []core.ShardId
	// At is when recovery started.
	At time.Time
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		spans:    make(map[core.TaskId]*Span),
		shards:   make(map[core.TaskId]core.ShardId),
		queued:   make(map[core.TaskId]time.Duration),
		attempts: make(map[core.TaskId]int),
	}
}

// Wrap instruments a callback: each execution records its span under the
// given callback id.
func (r *Recorder) Wrap(cb core.CallbackId, fn core.Callback) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		start := time.Now()
		out, err := fn(in, id)
		end := time.Now()
		if err == nil {
			r.mu.Lock()
			r.attempts[id]++
			r.spans[id] = &Span{Task: id, Callback: cb, Shard: r.shards[id], Start: start, End: end, QueueWait: r.queued[id], Attempt: r.attempts[id]}
			r.order = append(r.order, id)
			r.mu.Unlock()
		}
		return out, err
	}
}

// TaskExecuted implements core.Observer: it attaches the executing shard to
// the task's span (controllers notify after the callback returns).
func (r *Recorder) TaskExecuted(id core.TaskId, shard core.ShardId, cb core.CallbackId) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shards[id] = shard
	if s, ok := r.spans[id]; ok {
		s.Shard = shard
	}
}

// TaskQueued implements core.SchedObserver: scheduling controllers report
// when a ready task entered the dispatch queue and when a worker picked it
// up; the difference becomes the task span's QueueWait. Controllers call it
// just before the callback runs, so the wait is recorded by the time Wrap
// stores the span.
func (r *Recorder) TaskQueued(id core.TaskId, enqueued, started time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queued[id] = started.Sub(enqueued)
	if s, ok := r.spans[id]; ok {
		s.QueueWait = r.queued[id]
	}
}

// TaskReplayed implements core.ReplayObserver: during recovery, a task
// whose outputs were re-emitted from a lineage ledger records a zero-length
// span marked Replayed instead of a measured execution.
func (r *Recorder) TaskReplayed(id core.TaskId, shard core.ShardId, cb core.CallbackId) {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replays = append(r.replays, Span{Task: id, Callback: cb, Shard: shard, Start: now, End: now, Replayed: true})
}

// RecoveryStarted implements core.RecoveryObserver: the fault-tolerant
// coordinator reports each retry epoch and the shards it lost.
func (r *Recorder) RecoveryStarted(epoch int, lost []core.ShardId) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epochs = append(r.epochs, RecoveryEvent{Epoch: epoch, Lost: append([]core.ShardId(nil), lost...), At: time.Now()})
}

// Recoveries returns the recovery epoch boundaries observed, in order.
func (r *Recorder) Recoveries() []RecoveryEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RecoveryEvent(nil), r.epochs...)
}

// Replays returns the replayed-task spans recorded during recovery.
func (r *Recorder) Replays() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.replays...)
}

// Spans returns the recorded spans sorted by start time.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.spans))
	for _, s := range r.spans {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Task < out[j].Task
	})
	return out
}

// Reset clears the recorder for reuse between runs.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = make(map[core.TaskId]*Span)
	r.order = nil
	r.shards = make(map[core.TaskId]core.ShardId)
	r.queued = make(map[core.TaskId]time.Duration)
	r.attempts = make(map[core.TaskId]int)
	r.replays = nil
	r.epochs = nil
}

// AnnotateSlack fills each span's Slack field from the graph's critical-path
// analysis: 0 means the task lies on a critical path, larger values mean
// the task could be delayed that many levels without stretching the
// makespan. Queue wait on zero-slack spans is schedule-induced makespan
// loss; queue wait on high-slack spans is harmless.
func AnnotateSlack(g core.TaskGraph, spans []Span) error {
	cp, err := core.CriticalPathsFor(g)
	if err != nil {
		return err
	}
	for i := range spans {
		spans[i].Slack = cp.Slack(spans[i].Task)
	}
	return nil
}

// Summary aggregates a trace.
type Summary struct {
	// Tasks is the number of recorded executions.
	Tasks int
	// Wall is the span from the first task start to the last task end.
	Wall time.Duration
	// Busy is the summed task duration per shard.
	Busy map[core.ShardId]time.Duration
	// ByCallback is the summed task duration per task type.
	ByCallback map[core.CallbackId]time.Duration
	// CriticalPath is the longest dependency chain of measured durations
	// (a lower bound on any schedule of this execution's costs).
	CriticalPath time.Duration
	// QueueWait is the summed time tasks spent ready-but-waiting in the
	// dispatch queue.
	QueueWait time.Duration
	// CriticalQueueWait is the queue wait summed over zero-slack tasks only
	// — the portion of QueueWait that directly stretches the makespan, the
	// quantity the priority scheduler drives down.
	CriticalQueueWait time.Duration
}

// Utilization returns busy/(wall*shards) over the shards that ran tasks.
// Values above 1 indicate intra-shard parallelism: the MPI controller's
// thread pool overlaps several tasks per rank (up to its Workers setting).
func (s Summary) Utilization() float64 {
	if s.Wall <= 0 || len(s.Busy) == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range s.Busy {
		busy += b
	}
	return float64(busy) / (float64(s.Wall) * float64(len(s.Busy)))
}

// Summarize computes the aggregate metrics of a trace against the graph it
// executed.
func Summarize(g core.TaskGraph, spans []Span) (Summary, error) {
	sum := Summary{
		Busy:       make(map[core.ShardId]time.Duration),
		ByCallback: make(map[core.CallbackId]time.Duration),
	}
	if len(spans) == 0 {
		return sum, nil
	}
	cp, err := core.CriticalPathsFor(g)
	if err != nil {
		return Summary{}, err
	}
	byTask := make(map[core.TaskId]Span, len(spans))
	first, last := spans[0].Start, spans[0].End
	for _, s := range spans {
		byTask[s.Task] = s
		sum.Tasks++
		sum.Busy[s.Shard] += s.Duration()
		sum.ByCallback[s.Callback] += s.Duration()
		sum.QueueWait += s.QueueWait
		if cp.Slack(s.Task) == 0 {
			sum.CriticalQueueWait += s.QueueWait
		}
		if s.Start.Before(first) {
			first = s.Start
		}
		if s.End.After(last) {
			last = s.End
		}
	}
	sum.Wall = last.Sub(first)

	// Critical path: longest chain of measured durations through the
	// dependency graph.
	memo := make(map[core.TaskId]time.Duration)
	var longest func(id core.TaskId) (time.Duration, error)
	longest = func(id core.TaskId) (time.Duration, error) {
		if d, ok := memo[id]; ok {
			return d, nil
		}
		t, ok := g.Task(id)
		if !ok {
			return 0, fmt.Errorf("trace: span for unknown task %d", id)
		}
		var best time.Duration
		for _, p := range t.Producers() {
			d, err := longest(p)
			if err != nil {
				return 0, err
			}
			if d > best {
				best = d
			}
		}
		d := best + byTask[id].Duration()
		memo[id] = d
		return d, nil
	}
	for id := range byTask {
		d, err := longest(id)
		if err != nil {
			return Summary{}, err
		}
		if d > sum.CriticalPath {
			sum.CriticalPath = d
		}
	}
	return sum, nil
}

// WriteCSV emits the spans as CSV rows (task, callback, shard, start_ns,
// end_ns, duration_ns, queue_wait_ns, slack, attempt, replayed) relative to
// the first start, suitable for Gantt plotting.
func WriteCSV(w io.Writer, spans []Span) error {
	if _, err := fmt.Fprintln(w, "task,callback,shard,start_ns,end_ns,duration_ns,queue_wait_ns,slack,attempt,replayed"); err != nil {
		return err
	}
	if len(spans) == 0 {
		return nil
	}
	epoch := spans[0].Start
	for _, s := range spans {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	for _, s := range spans {
		replayed := 0
		if s.Replayed {
			replayed = 1
		}
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Task, s.Callback, s.Shard,
			s.Start.Sub(epoch).Nanoseconds(), s.End.Sub(epoch).Nanoseconds(),
			s.Duration().Nanoseconds(), s.QueueWait.Nanoseconds(), s.Slack, s.Attempt, replayed)
		if err != nil {
			return err
		}
	}
	return nil
}
