package trace

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

func tracedRun(t *testing.T, shards int) (*graphs.Reduction, *Recorder) {
	t.Helper()
	g, _ := graphs.NewReduction(16, 2)
	rec := NewRecorder()
	c := mpi.New(mpi.WithObserver(rec))
	if err := c.Initialize(g, core.NewModuloMap(shards, g.Size())); err != nil {
		t.Fatal(err)
	}
	work := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		time.Sleep(200 * time.Microsecond)
		return []core.Payload{core.Buffer([]byte{1})}, nil
	}
	for _, cb := range g.Callbacks() {
		c.RegisterCallback(cb, rec.Wrap(cb, work))
	}
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range g.LeafIds() {
		initial[id] = []core.Payload{core.Buffer([]byte{2})}
	}
	if _, err := c.Run(initial); err != nil {
		t.Fatal(err)
	}
	return g, rec
}

func TestRecorderCapturesAllTasks(t *testing.T) {
	g, rec := tracedRun(t, 4)
	spans := rec.Spans()
	if len(spans) != g.Size() {
		t.Fatalf("spans = %d, want %d", len(spans), g.Size())
	}
	seen := make(map[core.TaskId]bool)
	for _, s := range spans {
		if s.End.Before(s.Start) {
			t.Errorf("task %d: end before start", s.Task)
		}
		if s.Duration() <= 0 {
			t.Errorf("task %d: non-positive duration", s.Task)
		}
		if seen[s.Task] {
			t.Errorf("task %d recorded twice", s.Task)
		}
		seen[s.Task] = true
	}
	// Spans sorted by start.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatal("spans not sorted by start")
		}
	}
}

func TestRecorderShardsMatchMap(t *testing.T) {
	g, rec := tracedRun(t, 4)
	m := core.NewModuloMap(4, g.Size())
	for _, s := range rec.Spans() {
		if s.Shard != m.Shard(s.Task) {
			t.Errorf("task %d traced on shard %d, mapped to %d", s.Task, s.Shard, m.Shard(s.Task))
		}
	}
}

func TestSummarize(t *testing.T) {
	g, rec := tracedRun(t, 4)
	sum, err := Summarize(g, rec.Spans())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tasks != g.Size() {
		t.Errorf("Tasks = %d", sum.Tasks)
	}
	if sum.Wall <= 0 {
		t.Error("Wall must be positive")
	}
	// The MPI controller's shared executor runs at most GOMAXPROCS tasks
	// concurrently (the default worker budget), so busy time is bounded by
	// wall * budget and utilization by budget (over >= 1 shard).
	u := sum.Utilization()
	if max := float64(runtime.GOMAXPROCS(0)); u <= 0 || u > max+0.0001 {
		t.Errorf("utilization = %f, budget %f", u, max)
	}
	if sum.QueueWait < 0 || sum.CriticalQueueWait < 0 || sum.CriticalQueueWait > sum.QueueWait {
		t.Errorf("queue waits: total %v, critical %v", sum.QueueWait, sum.CriticalQueueWait)
	}
	// Critical path of a 31-task binary reduction with equal task costs is
	// 5 levels deep: it must be at least 5x the min task duration and at
	// most the total busy time.
	var minDur, total time.Duration
	for i, s := range rec.Spans() {
		if i == 0 || s.Duration() < minDur {
			minDur = s.Duration()
		}
		total += s.Duration()
	}
	if sum.CriticalPath < 5*minDur {
		t.Errorf("critical path %v < 5 levels x %v", sum.CriticalPath, minDur)
	}
	if sum.CriticalPath > total {
		t.Errorf("critical path %v exceeds total busy %v", sum.CriticalPath, total)
	}
	if len(sum.ByCallback) != 3 {
		t.Errorf("callback types = %d, want 3", len(sum.ByCallback))
	}
	if len(sum.Busy) == 0 {
		t.Error("no per-shard busy times")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	sum, err := Summarize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tasks != 0 || sum.Utilization() != 0 {
		t.Errorf("empty summary = %+v", sum)
	}
}

func TestSummarizeUnknownTask(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	if _, err := Summarize(g, []Span{{Task: 999}}); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestWriteCSV(t *testing.T) {
	_, rec := tracedRun(t, 2)
	var b strings.Builder
	if err := WriteCSV(&b, rec.Spans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "task,callback,shard,start_ns,end_ns,duration_ns,queue_wait_ns,slack,attempt,replayed" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+len(rec.Spans()) {
		t.Errorf("rows = %d, want %d", len(lines)-1, len(rec.Spans()))
	}
	// First data row starts at offset 0 (epoch-relative).
	if !strings.Contains(lines[1], ",0,") {
		t.Errorf("first row not epoch-relative: %q", lines[1])
	}
	var empty strings.Builder
	if err := WriteCSV(&empty, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQueueWaitRecorded runs 15 sleeping tasks through a single worker: all
// but the running task wait in the dispatch queue, so the recorder (wired
// as the controller's SchedObserver) must see positive queue wait. In a
// complete reduction every task lies on a critical path, so the critical
// queue wait equals the total.
func TestQueueWaitRecorded(t *testing.T) {
	g, _ := graphs.NewReduction(8, 2)
	rec := NewRecorder()
	c := mpi.New(mpi.WithObserver(rec), mpi.WithWorkers(1))
	if err := c.Initialize(g, core.NewModuloMap(2, g.Size())); err != nil {
		t.Fatal(err)
	}
	work := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		time.Sleep(200 * time.Microsecond)
		return []core.Payload{core.Buffer([]byte{1})}, nil
	}
	for _, cb := range g.Callbacks() {
		c.RegisterCallback(cb, rec.Wrap(cb, work))
	}
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range g.LeafIds() {
		initial[id] = []core.Payload{core.Buffer([]byte{2})}
	}
	if _, err := c.Run(initial); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(g, rec.Spans())
	if err != nil {
		t.Fatal(err)
	}
	if sum.QueueWait <= 0 {
		t.Errorf("QueueWait = %v, want > 0 with one worker and %d sleeping tasks", sum.QueueWait, g.Size())
	}
	if sum.CriticalQueueWait != sum.QueueWait {
		t.Errorf("reduction tasks all have zero slack: critical wait %v != total %v", sum.CriticalQueueWait, sum.QueueWait)
	}
}

func TestAnnotateSlack(t *testing.T) {
	// A -> B -> C with a side leaf L -> C: depths are A=3, B=2, C=1, L=2,
	// so L is one level off the critical path and everything else is on it.
	g := core.NewExplicitGraph([]core.Task{
		{Id: 0, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{1}}},
		{Id: 1, Callback: 0, Incoming: []core.TaskId{0}, Outgoing: [][]core.TaskId{{2}}},
		{Id: 2, Callback: 0, Incoming: []core.TaskId{1, 3}, Outgoing: [][]core.TaskId{{}}},
		{Id: 3, Callback: 0, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{{2}}},
	})
	spans := []Span{{Task: 0}, {Task: 1}, {Task: 2}, {Task: 3}}
	if err := AnnotateSlack(g, spans); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1}
	for i, s := range spans {
		if s.Slack != want[i] {
			t.Errorf("task %d slack = %d, want %d", s.Task, s.Slack, want[i])
		}
	}
}

func TestRecorderReset(t *testing.T) {
	_, rec := tracedRun(t, 2)
	if len(rec.Spans()) == 0 {
		t.Fatal("no spans before reset")
	}
	rec.Reset()
	if len(rec.Spans()) != 0 {
		t.Error("spans survived reset")
	}
}
