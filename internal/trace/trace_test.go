package trace

import (
	"strings"
	"testing"
	"time"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/mpi"
)

func tracedRun(t *testing.T, shards int) (*graphs.Reduction, *Recorder) {
	t.Helper()
	g, _ := graphs.NewReduction(16, 2)
	rec := NewRecorder()
	c := mpi.New(mpi.Options{Observer: rec})
	if err := c.Initialize(g, core.NewModuloMap(shards, g.Size())); err != nil {
		t.Fatal(err)
	}
	work := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		time.Sleep(200 * time.Microsecond)
		return []core.Payload{core.Buffer([]byte{1})}, nil
	}
	for _, cb := range g.Callbacks() {
		c.RegisterCallback(cb, rec.Wrap(cb, work))
	}
	initial := make(map[core.TaskId][]core.Payload)
	for _, id := range g.LeafIds() {
		initial[id] = []core.Payload{core.Buffer([]byte{2})}
	}
	if _, err := c.Run(initial); err != nil {
		t.Fatal(err)
	}
	return g, rec
}

func TestRecorderCapturesAllTasks(t *testing.T) {
	g, rec := tracedRun(t, 4)
	spans := rec.Spans()
	if len(spans) != g.Size() {
		t.Fatalf("spans = %d, want %d", len(spans), g.Size())
	}
	seen := make(map[core.TaskId]bool)
	for _, s := range spans {
		if s.End.Before(s.Start) {
			t.Errorf("task %d: end before start", s.Task)
		}
		if s.Duration() <= 0 {
			t.Errorf("task %d: non-positive duration", s.Task)
		}
		if seen[s.Task] {
			t.Errorf("task %d recorded twice", s.Task)
		}
		seen[s.Task] = true
	}
	// Spans sorted by start.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatal("spans not sorted by start")
		}
	}
}

func TestRecorderShardsMatchMap(t *testing.T) {
	g, rec := tracedRun(t, 4)
	m := core.NewModuloMap(4, g.Size())
	for _, s := range rec.Spans() {
		if s.Shard != m.Shard(s.Task) {
			t.Errorf("task %d traced on shard %d, mapped to %d", s.Task, s.Shard, m.Shard(s.Task))
		}
	}
}

func TestSummarize(t *testing.T) {
	g, rec := tracedRun(t, 4)
	sum, err := Summarize(g, rec.Spans())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tasks != g.Size() {
		t.Errorf("Tasks = %d", sum.Tasks)
	}
	if sum.Wall <= 0 {
		t.Error("Wall must be positive")
	}
	// The MPI controller overlaps up to 4 tasks per rank (its default
	// worker pool), so utilization lies in (0, 4].
	u := sum.Utilization()
	if u <= 0 || u > 4.0001 {
		t.Errorf("utilization = %f", u)
	}
	// Critical path of a 31-task binary reduction with equal task costs is
	// 5 levels deep: it must be at least 5x the min task duration and at
	// most the total busy time.
	var minDur, total time.Duration
	for i, s := range rec.Spans() {
		if i == 0 || s.Duration() < minDur {
			minDur = s.Duration()
		}
		total += s.Duration()
	}
	if sum.CriticalPath < 5*minDur {
		t.Errorf("critical path %v < 5 levels x %v", sum.CriticalPath, minDur)
	}
	if sum.CriticalPath > total {
		t.Errorf("critical path %v exceeds total busy %v", sum.CriticalPath, total)
	}
	if len(sum.ByCallback) != 3 {
		t.Errorf("callback types = %d, want 3", len(sum.ByCallback))
	}
	if len(sum.Busy) == 0 {
		t.Error("no per-shard busy times")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	sum, err := Summarize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tasks != 0 || sum.Utilization() != 0 {
		t.Errorf("empty summary = %+v", sum)
	}
}

func TestSummarizeUnknownTask(t *testing.T) {
	g, _ := graphs.NewReduction(4, 2)
	if _, err := Summarize(g, []Span{{Task: 999}}); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestWriteCSV(t *testing.T) {
	_, rec := tracedRun(t, 2)
	var b strings.Builder
	if err := WriteCSV(&b, rec.Spans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "task,callback,shard,start_ns,end_ns,duration_ns" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+len(rec.Spans()) {
		t.Errorf("rows = %d, want %d", len(lines)-1, len(rec.Spans()))
	}
	// First data row starts at offset 0 (epoch-relative).
	if !strings.Contains(lines[1], ",0,") {
		t.Errorf("first row not epoch-relative: %q", lines[1])
	}
	var empty strings.Builder
	if err := WriteCSV(&empty, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderReset(t *testing.T) {
	_, rec := tracedRun(t, 2)
	if len(rec.Spans()) == 0 {
		t.Fatal("no spans before reset")
	}
	rec.Reset()
	if len(rec.Spans()) != 0 {
		t.Error("spans survived reset")
	}
}
