package graphs

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Callback slots of a KWayMerge, in the order returned by Callbacks().
const (
	// MergeLeafCB runs at the up-sweep leaves (local computation).
	MergeLeafCB core.CallbackId = iota
	// MergeMidCB runs at internal up-sweep nodes (merge partial results).
	MergeMidCB
	// MergeRootCB runs at the root: merge the final partials and emit the
	// global result, which the down-sweep fans back out.
	MergeRootCB
	// MergeRelayCB runs at internal down-sweep nodes, relaying the global
	// result toward the leaves.
	MergeRelayCB
	// MergeFinalCB runs at the down-sweep leaves: combine the global result
	// with leaf-local state and emit the per-leaf sink output.
	MergeFinalCB
)

// KWayMerge is the k-way merge (all-reduce) dataflow: a k-way reduction
// whose root feeds a mirrored k-way broadcast, so every one of the k^d
// leaves receives the globally merged result. It is the skeleton of
// algorithms that compute a global structure and then distribute it back,
// such as the merge-tree dataflow of Fig. 5.
//
// Ids: the up-sweep reduction occupies [0, nt) with the Reduction id
// scheme; the down-sweep broadcast occupies [nt, 2*nt) with the Broadcast
// scheme shifted by nt. Up-leaf i and down-leaf i correspond to the same
// data block.
type KWayMerge struct {
	up   *Reduction
	down *Broadcast
	nt   int
}

// NewKWayMerge returns a merge dataflow over k^d leaves with valence k.
func NewKWayMerge(leafs, valence int) (*KWayMerge, error) {
	up, err := NewReduction(leafs, valence)
	if err != nil {
		return nil, fmt.Errorf("graphs: k-way merge: %w", err)
	}
	down, _ := NewBroadcast(leafs, valence)
	return &KWayMerge{up: up, down: down, nt: up.Size()}, nil
}

// Leafs returns the number of data blocks (up-sweep leaves).
func (g *KWayMerge) Leafs() int { return g.up.Leafs() }

// Valence returns the tree fan-in/out.
func (g *KWayMerge) Valence() int { return g.up.Valence() }

// Size implements core.TaskGraph.
func (g *KWayMerge) Size() int { return 2 * g.nt }

// TaskIds implements core.TaskGraph.
func (g *KWayMerge) TaskIds() []core.TaskId { return core.ContiguousIds(g.Size()) }

// Callbacks implements core.TaskGraph.
func (g *KWayMerge) Callbacks() []core.CallbackId {
	return []core.CallbackId{MergeLeafCB, MergeMidCB, MergeRootCB, MergeRelayCB, MergeFinalCB}
}

// UpLeafIds returns the ids of the up-sweep leaves in block order.
func (g *KWayMerge) UpLeafIds() []core.TaskId { return g.up.LeafIds() }

// DownLeafIds returns the ids of the down-sweep leaves in block order;
// down-leaf i emits the sink output for block i.
func (g *KWayMerge) DownLeafIds() []core.TaskId {
	ids := g.down.LeafIds()
	for i := range ids {
		ids[i] += core.TaskId(g.nt)
	}
	return ids
}

// Task implements core.TaskGraph.
func (g *KWayMerge) Task(id core.TaskId) (core.Task, bool) {
	if id == core.ExternalInput || int(id) < 0 || int(id) >= g.Size() {
		return core.Task{}, false
	}
	if int(id) < g.nt {
		// Up-sweep: a Reduction task; the root's sink output is rewired to
		// feed the down-sweep root.
		t, ok := g.up.Task(id)
		if !ok {
			return core.Task{}, false
		}
		switch t.Callback {
		case ReduceLeafCB:
			t.Callback = MergeLeafCB
		case ReduceMidCB:
			t.Callback = MergeMidCB
		case ReduceRootCB:
			t.Callback = MergeRootCB
		}
		if id == g.up.Root() {
			t.Outgoing = [][]core.TaskId{{core.TaskId(g.nt)}}
		}
		return t, true
	}
	// Down-sweep: a Broadcast task shifted by nt; the root's external input
	// is rewired to come from the up-sweep root.
	bt, ok := g.down.Task(id - core.TaskId(g.nt))
	if !ok {
		return core.Task{}, false
	}
	t := core.Task{Id: id}
	switch bt.Callback {
	case BcastSourceCB, BcastRelayCB:
		t.Callback = MergeRelayCB
	case BcastSinkCB:
		t.Callback = MergeFinalCB
	}
	if len(bt.Incoming) == 1 && bt.Incoming[0] == core.ExternalInput {
		t.Incoming = []core.TaskId{g.up.Root()}
	} else {
		t.Incoming = make([]core.TaskId, len(bt.Incoming))
		for i, in := range bt.Incoming {
			t.Incoming[i] = in + core.TaskId(g.nt)
		}
	}
	t.Outgoing = make([][]core.TaskId, len(bt.Outgoing))
	for s, slot := range bt.Outgoing {
		t.Outgoing[s] = make([]core.TaskId, len(slot))
		for i, c := range slot {
			t.Outgoing[s][i] = c + core.TaskId(g.nt)
		}
	}
	if g.nt == 1 {
		// Degenerate: single leaf. Down task receives from up root and
		// emits the sink output.
		t.Callback = MergeFinalCB
	}
	return t, true
}

var _ core.TaskGraph = (*KWayMerge)(nil)
