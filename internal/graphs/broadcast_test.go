package graphs

import (
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

func TestBroadcastValidates(t *testing.T) {
	for _, c := range []struct{ leafs, k int }{{1, 2}, {2, 2}, {8, 2}, {64, 8}, {9, 3}} {
		g, err := NewBroadcast(c.leafs, c.k)
		if err != nil {
			t.Fatalf("NewBroadcast(%d,%d): %v", c.leafs, c.k, err)
		}
		if err := core.Validate(g); err != nil {
			t.Errorf("Validate(%d,%d): %v", c.leafs, c.k, err)
		}
		if got := len(core.Roots(g)); got != c.leafs {
			t.Errorf("broadcast(%d,%d) has %d sinks, want %d", c.leafs, c.k, got, c.leafs)
		}
	}
}

func TestBroadcastRejectsBadLeafCount(t *testing.T) {
	if _, err := NewBroadcast(3, 2); err == nil {
		t.Error("3 leaves with valence 2 should be rejected")
	}
}

func TestBroadcastStructure(t *testing.T) {
	g, _ := NewBroadcast(4, 2)
	root, _ := g.Task(0)
	if root.Callback != BcastSourceCB || !root.IsLeaf() {
		t.Errorf("root = %+v", root)
	}
	if len(root.Outgoing) != 1 || len(root.Outgoing[0]) != 2 {
		t.Errorf("root should multicast one slot to 2 children, got %v", root.Outgoing)
	}
	mid, _ := g.Task(1)
	if mid.Callback != BcastRelayCB || mid.Incoming[0] != 0 {
		t.Errorf("mid = %+v", mid)
	}
	leaf, _ := g.Task(3)
	if leaf.Callback != BcastSinkCB || !leaf.IsRoot() {
		t.Errorf("leaf = %+v", leaf)
	}
}

// TestBroadcastDeliversSameValueEverywhere runs a broadcast end to end: the
// source value must arrive at every leaf.
func TestBroadcastDeliversSameValueEverywhere(t *testing.T) {
	g, _ := NewBroadcast(8, 2)
	c := core.NewSerial()
	if err := c.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	forward := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		return []core.Payload{in[0]}, nil
	}
	for _, cb := range g.Callbacks() {
		c.RegisterCallback(cb, forward)
	}
	out, err := c.Run(map[core.TaskId][]core.Payload{0: {u64(42)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("got %d sinks, want 8", len(out))
	}
	for _, id := range g.LeafIds() {
		ps, ok := out[id]
		if !ok || len(ps) != 1 {
			t.Fatalf("leaf %d missing output", id)
		}
		if getU64(ps[0]) != 42 {
			t.Errorf("leaf %d got %d, want 42", id, getU64(ps[0]))
		}
	}
}

func TestBroadcastSingleTask(t *testing.T) {
	g, _ := NewBroadcast(1, 2)
	if err := core.Validate(g); err != nil {
		t.Fatal(err)
	}
	task, _ := g.Task(0)
	if task.Callback != BcastSourceCB {
		t.Errorf("degenerate broadcast callback = %d", task.Callback)
	}
}
