package graphs

import (
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

func TestNeighbor3DValidates(t *testing.T) {
	for _, c := range []struct{ w, h, d int }{{1, 1, 1}, {2, 1, 1}, {2, 2, 2}, {3, 2, 4}} {
		g, err := NewNeighbor3D(c.w, c.h, c.d)
		if err != nil {
			t.Fatalf("NewNeighbor3D(%v): %v", c, err)
		}
		if err := core.Validate(g); err != nil {
			t.Errorf("Validate(%v): %v", c, err)
		}
		if g.Size() != 2*c.w*c.h*c.d {
			t.Errorf("Size = %d", g.Size())
		}
	}
	if _, err := NewNeighbor3D(0, 1, 1); err == nil {
		t.Error("degenerate grid should fail")
	}
}

func TestNeighbor3DStructure(t *testing.T) {
	g, _ := NewNeighbor3D(3, 3, 3)
	// Center cell has all 6 neighbors.
	ex, _ := g.Task(g.ExtractId(1, 1, 1))
	if len(ex.Outgoing) != 7 {
		t.Fatalf("center extract slots = %d, want 7 (self + 6)", len(ex.Outgoing))
	}
	if ex.Outgoing[0][0] != g.ProcessId(1, 1, 1) {
		t.Error("slot 0 should feed own process task")
	}
	// Corner has 3 neighbors.
	cx, _ := g.Task(g.ExtractId(0, 0, 0))
	if len(cx.Outgoing) != 4 {
		t.Fatalf("corner extract slots = %d, want 4", len(cx.Outgoing))
	}
	pr, _ := g.Task(g.ProcessId(1, 1, 1))
	if len(pr.Incoming) != 7 || !pr.IsRoot() {
		t.Errorf("center process = %+v", pr)
	}
	dirs := g.NeighborDirs(1, 1, 1)
	if len(dirs) != 6 || dirs[0] != West3D || dirs[5] != Up3D {
		t.Errorf("center dirs = %v", dirs)
	}
}

func TestNeighbor3DCellOfRoundTrip(t *testing.T) {
	g, _ := NewNeighbor3D(4, 3, 2)
	for z := 0; z < 2; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 4; x++ {
				gx, gy, gz, ph := g.CellOf(g.ExtractId(x, y, z))
				if gx != x || gy != y || gz != z || ph != 0 {
					t.Fatalf("CellOf(extract %d,%d,%d) = %d,%d,%d,%d", x, y, z, gx, gy, gz, ph)
				}
				gx, gy, gz, ph = g.CellOf(g.ProcessId(x, y, z))
				if gx != x || gy != y || gz != z || ph != 1 {
					t.Fatalf("CellOf(process %d,%d,%d) = %d,%d,%d,%d", x, y, z, gx, gy, gz, ph)
				}
			}
		}
	}
}

// TestNeighbor3DHaloSum runs a 3-D halo exchange end to end: every process
// task sums its own value plus all neighbors' contributions.
func TestNeighbor3DHaloSum(t *testing.T) {
	g, _ := NewNeighbor3D(2, 2, 2)
	extract := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		task, _ := g.Task(id)
		out := make([]core.Payload, len(task.Outgoing))
		for i := range out {
			out[i] = u64(getU64(in[0]))
		}
		return out, nil
	}
	c := core.NewSerial()
	if err := c.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	c.RegisterCallback(NeighborExtractCB, extract)
	c.RegisterCallback(NeighborProcessCB, sumCB(1))
	initial := make(map[core.TaskId][]core.Payload)
	for z := 0; z < 2; z++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				initial[g.ExtractId(x, y, z)] = []core.Payload{u64(1)}
			}
		}
	}
	out, err := c.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	// Every cell of a 2x2x2 grid has exactly 3 neighbors: sum = 1 + 3.
	for z := 0; z < 2; z++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 2; x++ {
				got := getU64(out[g.ProcessId(x, y, z)][0])
				if got != 4 {
					t.Errorf("cell (%d,%d,%d) sum = %d, want 4", x, y, z, got)
				}
			}
		}
	}
}
