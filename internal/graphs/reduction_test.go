package graphs

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"github.com/babelflow/babelflow-go/internal/core"
)

func u64(v uint64) core.Payload {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return core.Buffer(b)
}

func getU64(p core.Payload) uint64 { return binary.LittleEndian.Uint64(p.Data) }

// sumCB sums uint64 inputs and emits the sum on every output slot.
func sumCB(slots int) core.Callback {
	return func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var sum uint64
		for _, p := range in {
			sum += getU64(p)
		}
		out := make([]core.Payload, slots)
		for i := range out {
			out[i] = u64(sum)
		}
		return out, nil
	}
}

func TestNewReductionSizesMatchListing2(t *testing.T) {
	cases := []struct{ leafs, k, want int }{
		{1, 2, 1},
		{2, 2, 3},
		{4, 2, 7},
		{8, 2, 15},
		{8, 8, 9},
		{64, 8, 73},
		{9, 3, 13},
	}
	for _, c := range cases {
		g, err := NewReduction(c.leafs, c.k)
		if err != nil {
			t.Fatalf("NewReduction(%d,%d): %v", c.leafs, c.k, err)
		}
		if g.Size() != c.want {
			t.Errorf("Size(%d,%d) = %d, want %d", c.leafs, c.k, g.Size(), c.want)
		}
		if err := core.Validate(g); err != nil {
			t.Errorf("Validate(%d,%d): %v", c.leafs, c.k, err)
		}
	}
}

func TestNewReductionRejectsBadArgs(t *testing.T) {
	if _, err := NewReduction(3, 2); err == nil {
		t.Error("3 leaves with valence 2 should be rejected")
	}
	if _, err := NewReduction(4, 1); err == nil {
		t.Error("valence 1 should be rejected")
	}
	if _, err := NewReduction(0, 2); err == nil {
		t.Error("0 leaves should be rejected")
	}
}

func TestReductionStructure(t *testing.T) {
	g, _ := NewReduction(4, 2) // 7 tasks: root 0, mids 1-2, leaves 3-6
	root, _ := g.Task(0)
	if root.Callback != ReduceRootCB {
		t.Errorf("root callback = %d", root.Callback)
	}
	if len(root.Incoming) != 2 || root.Incoming[0] != 1 || root.Incoming[1] != 2 {
		t.Errorf("root incoming = %v", root.Incoming)
	}
	if len(root.Outgoing) != 1 || len(root.Outgoing[0]) != 0 {
		t.Errorf("root outgoing = %v (want one sink slot)", root.Outgoing)
	}
	mid, _ := g.Task(1)
	if mid.Callback != ReduceMidCB || mid.Outgoing[0][0] != 0 {
		t.Errorf("mid task = %+v", mid)
	}
	leaf, _ := g.Task(3)
	if leaf.Callback != ReduceLeafCB {
		t.Errorf("leaf callback = %d", leaf.Callback)
	}
	if !leaf.IsLeaf() {
		t.Error("leaf task is not a leaf")
	}
	if leaf.Outgoing[0][0] != 1 {
		t.Errorf("leaf 3 parent = %d, want 1", leaf.Outgoing[0][0])
	}
	if g.FirstLeaf() != 3 {
		t.Errorf("FirstLeaf = %d", g.FirstLeaf())
	}
	ids := g.LeafIds()
	if len(ids) != 4 || ids[0] != 3 || ids[3] != 6 {
		t.Errorf("LeafIds = %v", ids)
	}
}

func TestReductionSingleTask(t *testing.T) {
	g, _ := NewReduction(1, 2)
	if err := core.Validate(g); err != nil {
		t.Fatal(err)
	}
	task, _ := g.Task(0)
	if !task.IsLeaf() || !task.IsRoot() {
		t.Error("single-task reduction should be both leaf and root")
	}
	if task.Callback != ReduceRootCB {
		t.Errorf("callback = %d, want root", task.Callback)
	}
}

func TestReductionUnknownIds(t *testing.T) {
	g, _ := NewReduction(4, 2)
	if _, ok := g.Task(7); ok {
		t.Error("Task(7) should not exist in a 7-task graph")
	}
	if _, ok := g.Task(core.ExternalInput); ok {
		t.Error("Task(ExternalInput) should not exist")
	}
}

// TestReductionComputesGlobalSum runs the Listing-1 pattern end to end on
// the serial reference controller.
func TestReductionComputesGlobalSum(t *testing.T) {
	g, _ := NewReduction(8, 2)
	c := core.NewSerial()
	if err := c.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	for _, cb := range g.Callbacks() {
		c.RegisterCallback(cb, sumCB(1))
	}
	initial := make(map[core.TaskId][]core.Payload)
	var want uint64
	for i, id := range g.LeafIds() {
		initial[id] = []core.Payload{u64(uint64(i + 1))}
		want += uint64(i + 1)
	}
	out, err := c.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	if got := getU64(out[g.Root()][0]); got != want {
		t.Errorf("global sum = %d, want %d", got, want)
	}
}

// Property: reductions of any valid (leafs, valence) shape validate, have
// exactly `leafs` leaves, one root, and every non-root path reaches task 0.
func TestReductionShapeProperty(t *testing.T) {
	check := func(d8, k8 uint8) bool {
		k := int(k8%4) + 2 // 2..5
		d := int(d8 % 4)   // 0..3
		leafs := intPow(k, d)
		g, err := NewReduction(leafs, k)
		if err != nil {
			return false
		}
		if core.Validate(g) != nil {
			return false
		}
		if len(core.Leaves(g)) != leafs {
			return false
		}
		roots := core.Roots(g)
		if len(roots) != 1 || roots[0] != 0 {
			return false
		}
		// Walk each leaf to the root.
		for _, id := range g.LeafIds() {
			cur := id
			for steps := 0; cur != 0; steps++ {
				if steps > d+1 {
					return false
				}
				task, ok := g.Task(cur)
				if !ok {
					return false
				}
				cur = task.Outgoing[0][0]
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundUpPow(t *testing.T) {
	cases := []struct{ n, base, want int }{
		{1, 2, 1}, {2, 2, 2}, {3, 2, 4}, {5, 2, 8}, {8, 2, 8},
		{9, 8, 64}, {64, 8, 64}, {0, 2, 1}, {-3, 2, 1},
	}
	for _, c := range cases {
		if got := RoundUpPow(c.n, c.base); got != c.want {
			t.Errorf("RoundUpPow(%d,%d) = %d, want %d", c.n, c.base, got, c.want)
		}
	}
}
