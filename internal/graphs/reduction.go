// Package graphs provides the prototypical task graphs that ship with
// BabelFlow: k-way reductions, broadcasts, binary swaps, k-way merge
// (all-reduce) and neighbor dataflows, plus a Builder for composing graphs
// via id prefixes. Users can employ these directly — registering one
// callback per task type — or derive new extensions.
package graphs

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Callback slots of a Reduction, in the order returned by Callbacks().
// Mirroring Listing 1 of the paper: index 0 runs at the leaves (e.g. volume
// rendering of the local block), index 1 at internal nodes (compositing),
// index 2 at the root (writing the image).
const (
	ReduceLeafCB core.CallbackId = iota
	ReduceMidCB
	ReduceRootCB
)

// Reduction is a k-way reduction tree over k^d leaves (Listing 2 of the
// paper). Task 0 is the root; the children of task t are t*k+1 .. t*k+k and
// the parent of t is (t-1)/k. Leaves occupy the last k^d ids and each takes
// one external input. The root produces the single sink output.
type Reduction struct {
	k      int
	d      int
	leafs  int
	ntasks int
}

// NewReduction returns a reduction over the given number of leaves with the
// given valence (fan-in). The leaf count must be an exact power of the
// valence; see RoundUpPow to size block decompositions accordingly.
func NewReduction(leafs, valence int) (*Reduction, error) {
	if valence < 2 {
		return nil, fmt.Errorf("graphs: reduction valence must be >= 2, got %d", valence)
	}
	if leafs < 1 {
		return nil, fmt.Errorf("graphs: reduction needs at least one leaf, got %d", leafs)
	}
	d, n := 0, 1
	for n < leafs {
		n *= valence
		d++
	}
	if n != leafs {
		return nil, fmt.Errorf("graphs: reduction leaf count %d is not a power of valence %d", leafs, valence)
	}
	// ntasks = (k^(d+1) - 1) / (k - 1)
	ntasks := (intPow(valence, d+1) - 1) / (valence - 1)
	return &Reduction{k: valence, d: d, leafs: leafs, ntasks: ntasks}, nil
}

// Valence returns the fan-in of the tree.
func (g *Reduction) Valence() int { return g.k }

// Depth returns the number of reduction levels (0 for a single task).
func (g *Reduction) Depth() int { return g.d }

// Leafs returns the number of leaf tasks.
func (g *Reduction) Leafs() int { return g.leafs }

// Size implements core.TaskGraph.
func (g *Reduction) Size() int { return g.ntasks }

// TaskIds implements core.TaskGraph.
func (g *Reduction) TaskIds() []core.TaskId { return core.ContiguousIds(g.ntasks) }

// Callbacks implements core.TaskGraph.
func (g *Reduction) Callbacks() []core.CallbackId {
	return []core.CallbackId{ReduceLeafCB, ReduceMidCB, ReduceRootCB}
}

// LeafIds returns the ids of the leaf tasks in block order: leaf i (the i-th
// block of the decomposition) has id FirstLeaf()+i.
func (g *Reduction) LeafIds() []core.TaskId {
	ids := make([]core.TaskId, g.leafs)
	first := g.ntasks - g.leafs
	for i := range ids {
		ids[i] = core.TaskId(first + i)
	}
	return ids
}

// FirstLeaf returns the id of leaf 0.
func (g *Reduction) FirstLeaf() core.TaskId { return core.TaskId(g.ntasks - g.leafs) }

// Root returns the id of the root task.
func (g *Reduction) Root() core.TaskId { return 0 }

// Task implements core.TaskGraph.
func (g *Reduction) Task(id core.TaskId) (core.Task, bool) {
	i := int(id)
	if id == core.ExternalInput || i < 0 || i >= g.ntasks {
		return core.Task{}, false
	}
	t := core.Task{Id: id}
	isLeaf := i >= g.ntasks-g.leafs
	if isLeaf {
		t.Callback = ReduceLeafCB
		t.Incoming = []core.TaskId{core.ExternalInput}
	} else {
		t.Callback = ReduceMidCB
		t.Incoming = make([]core.TaskId, g.k)
		for c := 0; c < g.k; c++ {
			t.Incoming[c] = core.TaskId(i*g.k + c + 1)
		}
	}
	if i == 0 {
		t.Callback = ReduceRootCB
		t.Outgoing = [][]core.TaskId{{}}
	} else {
		t.Outgoing = [][]core.TaskId{{core.TaskId((i - 1) / g.k)}}
	}
	return t, true
}

// RoundUpPow returns the smallest power of base that is >= n.
func RoundUpPow(n, base int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p *= base
	}
	return p
}

func intPow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

var _ core.TaskGraph = (*Reduction)(nil)
