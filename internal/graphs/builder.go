package graphs

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// PrefixShift is the bit position of the graph prefix within a composed
// task id: Pid(prefix, id) = prefix<<48 | id. Sub-graph ids must therefore
// stay below 2^48, and prefix 0xFFFF combined with a maximal id is reserved
// (it would collide with core.ExternalInput).
const PrefixShift = 48

// Pid maps a sub-graph-local task id into the composed id space of a
// Builder under the given prefix.
func Pid(prefix uint16, id core.TaskId) core.TaskId {
	return core.TaskId(uint64(prefix)<<PrefixShift | uint64(id))
}

// Builder composes multiple task graphs into one dataflow. Each added graph
// receives a distinct 16-bit prefix on its task ids (the paper's technique
// for assembling graphs from phases with intuitive per-phase numbering) and
// a callback remapping into a shared callback id space. Connect rewires a
// sink output of one sub-graph to an external input of another; ConnectIf
// additionally assigns the edge to a runtime branch of the producer's
// conditional fan-out, and Sub returns a fluent handle that can wrap its
// sub-graph in a convergence loop (Iterate) before composition.
//
// Builder materializes the composed graph explicitly, so it suits graphs up
// to a few million tasks; the specialized graphs (e.g. the merge-tree
// dataflow) stay procedural.
type Builder struct {
	tasks    map[core.TaskId]*core.Task
	prefixes map[uint16]bool
	pending  []*Sub
	next     uint16
	err      error
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{tasks: make(map[core.TaskId]*core.Task), prefixes: make(map[uint16]bool)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Add inserts a sub-graph under the given prefix. cbMap translates the
// sub-graph's callback ids into the composed graph's callback id space; a
// nil map keeps the callback ids unchanged (only safe when sub-graphs use
// disjoint id ranges). Errors are deferred and reported by Graph.
func (b *Builder) Add(prefix uint16, g core.TaskGraph, cbMap map[core.CallbackId]core.CallbackId) *Builder {
	if b.err != nil {
		return b
	}
	if b.prefixes[prefix] {
		b.fail("graphs: prefix %d used twice", prefix)
		return b
	}
	b.prefixes[prefix] = true
	b.addGraph(prefix, g, cbMap)
	return b
}

// addGraph prefixes and inserts a sub-graph's tasks (prefix bookkeeping is
// the caller's).
func (b *Builder) addGraph(prefix uint16, g core.TaskGraph, cbMap map[core.CallbackId]core.CallbackId) {
	for _, id := range g.TaskIds() {
		if uint64(id) >= 1<<PrefixShift {
			b.fail("graphs: sub-graph task id %d exceeds prefix capacity", id)
			return
		}
		t, ok := g.Task(id)
		if !ok {
			b.fail("graphs: sub-graph enumerates unknown task %d", id)
			return
		}
		nt := core.Task{Id: Pid(prefix, id), Callback: t.Callback, Branches: t.Branches}
		if t.Cond != nil {
			nt.Cond = append([]int(nil), t.Cond...)
		}
		if cbMap != nil {
			mapped, ok := cbMap[t.Callback]
			if !ok {
				b.fail("graphs: no callback mapping for callback %d of prefix %d", t.Callback, prefix)
				return
			}
			nt.Callback = mapped
		}
		nt.Incoming = make([]core.TaskId, len(t.Incoming))
		for i, in := range t.Incoming {
			if in == core.ExternalInput {
				nt.Incoming[i] = core.ExternalInput
			} else {
				nt.Incoming[i] = Pid(prefix, in)
			}
		}
		nt.Outgoing = make([][]core.TaskId, len(t.Outgoing))
		for s, slot := range t.Outgoing {
			nt.Outgoing[s] = make([]core.TaskId, len(slot))
			for i, c := range slot {
				nt.Outgoing[s][i] = Pid(prefix, c)
			}
		}
		b.tasks[nt.Id] = &nt
	}
}

// Sub is a fluent handle on one sub-graph of a Builder composition. The
// sub-graph is held pending until the builder needs its tasks (Connect,
// ConnectIf, AddTask or Graph), so a handle can still wrap it — e.g. in a
// convergence loop via Iterate — before the composition prefix is applied.
type Sub struct {
	b       *Builder
	prefix  uint16
	graph   core.TaskGraph
	cbMap   map[core.CallbackId]core.CallbackId
	iter    *core.IterativeGraph
	flushed bool
}

// Sub stages a sub-graph under the next free prefix and returns its fluent
// handle. cbMap follows Add: it translates the sub-graph's callback ids into
// the composed space, and nil keeps them unchanged. Errors are deferred and
// reported by Graph.
func (b *Builder) Sub(g core.TaskGraph, cbMap map[core.CallbackId]core.CallbackId) *Sub {
	for b.prefixes[b.next] {
		b.next++
	}
	s := &Sub{b: b, prefix: b.next, graph: g, cbMap: cbMap}
	b.prefixes[b.next] = true
	b.pending = append(b.pending, s)
	if g == nil {
		b.fail("graphs: Sub of a nil graph")
	}
	return s
}

// Iterate wraps the sub-graph in a convergence loop (core.Iterate) before
// the composition prefix is applied, so the iteration index occupies id bits
// below the prefix and composed ids stay unambiguous per (prefix, iteration,
// body task). It must be called before the builder materializes the
// sub-graph (i.e. before Connect/ConnectIf/AddTask/Graph touch it). The
// synthetic decision callback keeps its reserved id across the composition;
// register it via Iter().RegisterDecision. Errors are deferred and reported
// by Graph.
func (s *Sub) Iterate(pred core.ConvergencePredicate, opts ...core.IterOption) *Sub {
	if s.b.err != nil {
		return s
	}
	if s.flushed {
		s.b.fail("graphs: Iterate on prefix %d after its sub-graph was composed", s.prefix)
		return s
	}
	if s.iter != nil {
		s.b.fail("graphs: Iterate called twice on prefix %d", s.prefix)
		return s
	}
	ig, err := core.Iterate(s.graph, pred, opts...)
	if err != nil {
		s.b.fail("graphs: prefix %d: %v", s.prefix, err)
		return s
	}
	s.iter = ig
	return s
}

// Id maps a sub-graph-local task id into the composed id space. For an
// iterated sub-graph the body-local id names its iteration-0 copy; use
// core.IterId for later iterations and core.DecisionId for the synthetic
// decision tasks, composed via Pid(s.Prefix(), ...).
func (s *Sub) Id(local core.TaskId) core.TaskId { return Pid(s.prefix, local) }

// Prefix returns the handle's composition prefix.
func (s *Sub) Prefix() uint16 { return s.prefix }

// Iter returns the unrolled iterative graph, or nil when Iterate was not
// called (or failed).
func (s *Sub) Iter() *core.IterativeGraph { return s.iter }

// Final decodes the converged sinks of an iterated sub-graph from a composed
// run's results: it selects this sub-graph's decision-task sinks and returns
// them keyed by body-local task id (see core.IterativeGraph.Final).
func (s *Sub) Final(results map[core.TaskId][]core.Payload) (int, map[core.TaskId][]core.Payload, error) {
	if s.iter == nil {
		return 0, nil, fmt.Errorf("graphs: prefix %d is not an iterated sub-graph", s.prefix)
	}
	local := make(map[core.TaskId][]core.Payload, len(results))
	for id, ps := range results {
		if uint16(id>>PrefixShift) == s.prefix {
			local[id&(1<<PrefixShift-1)] = ps
		}
	}
	return s.iter.Final(local)
}

// flush materializes every pending sub-graph into the builder's task table.
// Iterated sub-graphs compose their unrolled form; the reserved decision
// callback id maps to itself under a callback remapping.
func (b *Builder) flush() {
	for _, s := range b.pending {
		if s.flushed {
			continue
		}
		s.flushed = true
		if b.err != nil || s.graph == nil {
			continue
		}
		g, cbMap := s.graph, s.cbMap
		if s.iter != nil {
			g = s.iter
			if cbMap != nil {
				m := make(map[core.CallbackId]core.CallbackId, len(cbMap)+1)
				for k, v := range cbMap {
					m[k] = v
				}
				m[core.DecisionCallback] = core.DecisionCallback
				cbMap = m
			}
		}
		b.addGraph(s.prefix, g, cbMap)
	}
	b.pending = b.pending[:0]
}

// Connect rewires the fromSlot-th output slot of task from (which must be a
// sink slot, i.e. have no consumers yet — or already carry builder-added
// consumers, in which case the new consumer is appended) to feed the
// toSlot-th input slot of task to (which must currently be ExternalInput).
// Ids are composed ids; use Pid. Errors are deferred and reported by Graph.
func (b *Builder) Connect(from core.TaskId, fromSlot int, to core.TaskId, toSlot int) *Builder {
	b.flush()
	if b.err != nil {
		return b
	}
	ft, ok := b.tasks[from]
	if !ok {
		b.fail("graphs: connect from unknown task %d", from)
		return b
	}
	tt, ok := b.tasks[to]
	if !ok {
		b.fail("graphs: connect to unknown task %d", to)
		return b
	}
	if fromSlot < 0 || fromSlot >= len(ft.Outgoing) {
		b.fail("graphs: task %d has no output slot %d", from, fromSlot)
		return b
	}
	if toSlot < 0 || toSlot >= len(tt.Incoming) {
		b.fail("graphs: task %d has no input slot %d", to, toSlot)
		return b
	}
	if tt.Incoming[toSlot] != core.ExternalInput {
		b.fail("graphs: input slot %d of task %d is already connected", toSlot, to)
		return b
	}
	ft.Outgoing[fromSlot] = append(ft.Outgoing[fromSlot], to)
	tt.Incoming[toSlot] = from
	return b
}

// ConnectIf wires a conditional edge: like Connect, but the producer's
// fromSlot-th output slot is assigned to runtime branch index branch of its
// conditional fan-out. At run time the producer's callback picks one branch
// (see core.SelectBranch); the slots of every other branch carry dead tokens
// and their downstream tasks cancel without executing. Unassigned slots of
// the same producer stay unconditional. The branch count grows to cover the
// highest branch wired; core.Validate rejects a declared branch that ends up
// owning no slot. Errors are deferred and reported by Graph.
func (b *Builder) ConnectIf(from core.TaskId, fromSlot int, branch int, to core.TaskId, toSlot int) *Builder {
	b.flush()
	if b.err != nil {
		return b
	}
	if branch < 0 {
		b.fail("graphs: negative branch index %d on edge %d -> %d", branch, from, to)
		return b
	}
	ft, ok := b.tasks[from]
	if !ok {
		b.fail("graphs: connect from unknown task %d", from)
		return b
	}
	if fromSlot < 0 || fromSlot >= len(ft.Outgoing) {
		b.fail("graphs: task %d has no output slot %d", from, fromSlot)
		return b
	}
	if ft.Cond == nil {
		ft.Cond = make([]int, len(ft.Outgoing))
		for i := range ft.Cond {
			ft.Cond[i] = -1
		}
	}
	if prev := ft.Cond[fromSlot]; prev != -1 && prev != branch {
		b.fail("graphs: output slot %d of task %d assigned to branches %d and %d", fromSlot, from, prev, branch)
		return b
	}
	ft.Cond[fromSlot] = branch
	if branch+1 > ft.Branches {
		ft.Branches = branch + 1
	}
	return b.Connect(from, fromSlot, to, toSlot)
}

// AddTask inserts a single standalone task with a composed id. It is useful
// for wrap-up tasks such as the extra root of Listing 1. Errors are
// deferred and reported by Graph.
func (b *Builder) AddTask(t core.Task) *Builder {
	b.flush()
	if b.err != nil {
		return b
	}
	if _, dup := b.tasks[t.Id]; dup {
		b.fail("graphs: duplicate task id %d", t.Id)
		return b
	}
	c := t.Clone()
	b.tasks[t.Id] = &c
	return b
}

// MaxIter bounds an iterated sub-graph at n iterations (alias of
// core.MaxIterations, for fluent Sub(...).Iterate(pred, MaxIter(8)) use).
func MaxIter(n int) core.IterOption { return core.MaxIterations(n) }

// Gate declares a predicate-visible feedback edge of an iterated sub-graph
// (alias of core.Gate; ids are body-local).
func Gate(from core.TaskId, fromSlot int, to core.TaskId, toSlot int) core.IterOption {
	return core.Gate(from, fromSlot, to, toSlot)
}

// Carry declares a pass-through feedback edge of an iterated sub-graph
// (alias of core.Carry; ids are body-local).
func Carry(from core.TaskId, fromSlot int, to core.TaskId, toSlot int) core.IterOption {
	return core.Carry(from, fromSlot, to, toSlot)
}

// Graph finalizes the composition, validates it and returns the explicit
// graph, or the first deferred error.
func (b *Builder) Graph() (*core.ExplicitGraph, error) {
	b.flush()
	if b.err != nil {
		return nil, b.err
	}
	tasks := make([]core.Task, 0, len(b.tasks))
	for _, t := range b.tasks {
		tasks = append(tasks, *t)
	}
	g := core.NewExplicitGraph(tasks)
	if err := core.Validate(g); err != nil {
		return nil, fmt.Errorf("graphs: composed graph invalid: %w", err)
	}
	return g, nil
}
