package graphs

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// PrefixShift is the bit position of the graph prefix within a composed
// task id: Pid(prefix, id) = prefix<<48 | id. Sub-graph ids must therefore
// stay below 2^48, and prefix 0xFFFF combined with a maximal id is reserved
// (it would collide with core.ExternalInput).
const PrefixShift = 48

// Pid maps a sub-graph-local task id into the composed id space of a
// Builder under the given prefix.
func Pid(prefix uint16, id core.TaskId) core.TaskId {
	return core.TaskId(uint64(prefix)<<PrefixShift | uint64(id))
}

// Builder composes multiple task graphs into one dataflow. Each added graph
// receives a distinct 16-bit prefix on its task ids (the paper's technique
// for assembling graphs from phases with intuitive per-phase numbering) and
// a callback remapping into a shared callback id space. Connect rewires a
// sink output of one sub-graph to an external input of another.
//
// Builder materializes the composed graph explicitly, so it suits graphs up
// to a few million tasks; the specialized graphs (e.g. the merge-tree
// dataflow) stay procedural.
type Builder struct {
	tasks    map[core.TaskId]*core.Task
	prefixes map[uint16]bool
	err      error
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{tasks: make(map[core.TaskId]*core.Task), prefixes: make(map[uint16]bool)}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Add inserts a sub-graph under the given prefix. cbMap translates the
// sub-graph's callback ids into the composed graph's callback id space; a
// nil map keeps the callback ids unchanged (only safe when sub-graphs use
// disjoint id ranges). Errors are deferred and reported by Graph.
func (b *Builder) Add(prefix uint16, g core.TaskGraph, cbMap map[core.CallbackId]core.CallbackId) *Builder {
	if b.err != nil {
		return b
	}
	if b.prefixes[prefix] {
		b.fail("graphs: prefix %d used twice", prefix)
		return b
	}
	b.prefixes[prefix] = true
	for _, id := range g.TaskIds() {
		if uint64(id) >= 1<<PrefixShift {
			b.fail("graphs: sub-graph task id %d exceeds prefix capacity", id)
			return b
		}
		t, ok := g.Task(id)
		if !ok {
			b.fail("graphs: sub-graph enumerates unknown task %d", id)
			return b
		}
		nt := core.Task{Id: Pid(prefix, id), Callback: t.Callback}
		if cbMap != nil {
			mapped, ok := cbMap[t.Callback]
			if !ok {
				b.fail("graphs: no callback mapping for callback %d of prefix %d", t.Callback, prefix)
				return b
			}
			nt.Callback = mapped
		}
		nt.Incoming = make([]core.TaskId, len(t.Incoming))
		for i, in := range t.Incoming {
			if in == core.ExternalInput {
				nt.Incoming[i] = core.ExternalInput
			} else {
				nt.Incoming[i] = Pid(prefix, in)
			}
		}
		nt.Outgoing = make([][]core.TaskId, len(t.Outgoing))
		for s, slot := range t.Outgoing {
			nt.Outgoing[s] = make([]core.TaskId, len(slot))
			for i, c := range slot {
				nt.Outgoing[s][i] = Pid(prefix, c)
			}
		}
		b.tasks[nt.Id] = &nt
	}
	return b
}

// Connect rewires the fromSlot-th output slot of task from (which must be a
// sink slot, i.e. have no consumers yet — or already carry builder-added
// consumers, in which case the new consumer is appended) to feed the
// toSlot-th input slot of task to (which must currently be ExternalInput).
// Ids are composed ids; use Pid. Errors are deferred and reported by Graph.
func (b *Builder) Connect(from core.TaskId, fromSlot int, to core.TaskId, toSlot int) *Builder {
	if b.err != nil {
		return b
	}
	ft, ok := b.tasks[from]
	if !ok {
		b.fail("graphs: connect from unknown task %d", from)
		return b
	}
	tt, ok := b.tasks[to]
	if !ok {
		b.fail("graphs: connect to unknown task %d", to)
		return b
	}
	if fromSlot < 0 || fromSlot >= len(ft.Outgoing) {
		b.fail("graphs: task %d has no output slot %d", from, fromSlot)
		return b
	}
	if toSlot < 0 || toSlot >= len(tt.Incoming) {
		b.fail("graphs: task %d has no input slot %d", to, toSlot)
		return b
	}
	if tt.Incoming[toSlot] != core.ExternalInput {
		b.fail("graphs: input slot %d of task %d is already connected", toSlot, to)
		return b
	}
	ft.Outgoing[fromSlot] = append(ft.Outgoing[fromSlot], to)
	tt.Incoming[toSlot] = from
	return b
}

// AddTask inserts a single standalone task with a composed id. It is useful
// for wrap-up tasks such as the extra root of Listing 1. Errors are
// deferred and reported by Graph.
func (b *Builder) AddTask(t core.Task) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.tasks[t.Id]; dup {
		b.fail("graphs: duplicate task id %d", t.Id)
		return b
	}
	c := t.Clone()
	b.tasks[t.Id] = &c
	return b
}

// Graph finalizes the composition, validates it and returns the explicit
// graph, or the first deferred error.
func (b *Builder) Graph() (*core.ExplicitGraph, error) {
	if b.err != nil {
		return nil, b.err
	}
	tasks := make([]core.Task, 0, len(b.tasks))
	for _, t := range b.tasks {
		tasks = append(tasks, *t)
	}
	g := core.NewExplicitGraph(tasks)
	if err := core.Validate(g); err != nil {
		return nil, fmt.Errorf("graphs: composed graph invalid: %w", err)
	}
	return g, nil
}
