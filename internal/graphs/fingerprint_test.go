package graphs

import (
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

// composed builds reduction->broadcast under prefixes p1/p2 with the
// reduction root feeding the broadcast input.
func composed(t *testing.T, p1, p2 uint16) *core.ExplicitGraph {
	t.Helper()
	red, err := NewReduction(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewBroadcast(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewBuilder().
		Add(p1, red, map[core.CallbackId]core.CallbackId{0: 0, 1: 1, 2: 2}).
		Add(p2, bc, map[core.CallbackId]core.CallbackId{0: 3, 1: 4, 2: 5}).
		Connect(Pid(p1, red.Root()), 0, Pid(p2, bc.Root()), 0).
		Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFingerprintComposedGraphs covers the wire-handshake use of
// core.GraphFingerprint on prefixed compositions: identical compositions
// agree, and moving a sub-graph to a different prefix — same shape, shifted
// id space — is a different dataflow and must not collide.
func TestFingerprintComposedGraphs(t *testing.T) {
	a := core.GraphFingerprint(composed(t, 1, 2), nil)
	b := core.GraphFingerprint(composed(t, 1, 2), nil)
	if a != b {
		t.Errorf("identical compositions fingerprint differently: %s vs %s", a, b)
	}
	if c := core.GraphFingerprint(composed(t, 1, 3), nil); c == a {
		t.Error("prefix change not reflected in fingerprint")
	}

	// A lone sub-graph must differ from the composition containing it.
	red, err := NewReduction(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if core.GraphFingerprint(red, nil) == a {
		t.Error("sub-graph collides with its composition")
	}
}
