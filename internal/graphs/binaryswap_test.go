package graphs

import (
	"testing"
	"testing/quick"

	"github.com/babelflow/babelflow-go/internal/core"
)

func TestBinarySwapValidates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		g, err := NewBinarySwap(n)
		if err != nil {
			t.Fatalf("NewBinarySwap(%d): %v", n, err)
		}
		if err := core.Validate(g); err != nil {
			t.Errorf("Validate(%d): %v", n, err)
		}
		if got := g.Size(); got != (g.Rounds()+1)*n {
			t.Errorf("Size(%d) = %d", n, got)
		}
		if got := len(core.Roots(g)); got != n {
			t.Errorf("binary swap over %d should end with %d tiles, got %d", n, n, got)
		}
		if got := len(core.Leaves(g)); got != n {
			t.Errorf("binary swap over %d should have %d leaves, got %d", n, n, got)
		}
	}
}

func TestBinarySwapRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 12} {
		if _, err := NewBinarySwap(n); err == nil {
			t.Errorf("NewBinarySwap(%d) should fail", n)
		}
	}
}

func TestBinarySwapPartnerStructure(t *testing.T) {
	g, _ := NewBinarySwap(4) // rounds 0..2, ids r*4+i
	// Round 0 task 0: keeps to (1,0)=4, sends to partner 0^1=1 -> (1,1)=5.
	t0, _ := g.Task(0)
	if t0.Callback != SwapLeafCB {
		t.Errorf("round-0 callback = %d", t0.Callback)
	}
	if t0.Outgoing[0][0] != 4 || t0.Outgoing[1][0] != 5 {
		t.Errorf("task 0 outgoing = %v", t0.Outgoing)
	}
	// Round 1 task (1,2)=6: inputs from (0,2)=2 and partner 2^1=3 -> 3.
	t6, _ := g.Task(6)
	if t6.Incoming[0] != 2 || t6.Incoming[1] != 3 {
		t.Errorf("task 6 incoming = %v", t6.Incoming)
	}
	// Round 1->2 exchanges bit 1: task (1,0)=4 sends to (2,0)=8 and (2,2)=10.
	t4, _ := g.Task(4)
	if t4.Callback != SwapMidCB {
		t.Errorf("mid callback = %d", t4.Callback)
	}
	if t4.Outgoing[0][0] != 8 || t4.Outgoing[1][0] != 10 {
		t.Errorf("task 4 outgoing = %v", t4.Outgoing)
	}
	// Final round task (2,3)=11: two inputs, sink output, root callback.
	t11, _ := g.Task(11)
	if t11.Callback != SwapRootCB || !t11.IsRoot() {
		t.Errorf("final task = %+v", t11)
	}
}

func TestBinarySwapSingleParticipant(t *testing.T) {
	g, _ := NewBinarySwap(1)
	task, _ := g.Task(0)
	if task.Callback != SwapRootCB || !task.IsLeaf() || !task.IsRoot() {
		t.Errorf("degenerate swap task = %+v", task)
	}
}

// TestBinarySwapTileExchange verifies the defining property of binary swap:
// executing with callbacks that model "split image, keep half, swap half"
// over token sets, every final tile ends up owning the tokens of ALL leaves
// restricted to its tile index. We model the image as a bitmask per tile.
func TestBinarySwapTileExchange(t *testing.T) {
	const n = 8
	g, _ := NewBinarySwap(n)
	c := core.NewSerial()
	if err := c.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	// Payload: one uint64 bitmask of contributing leaves. At every round
	// both halves carry the union of contributions so far; the final tile
	// must contain all n contributions.
	union := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var m uint64
		for _, p := range in {
			m |= getU64(p)
		}
		return []core.Payload{u64(m), u64(m)}, nil
	}
	final := func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		var m uint64
		for _, p := range in {
			m |= getU64(p)
		}
		return []core.Payload{u64(m)}, nil
	}
	c.RegisterCallback(SwapLeafCB, union)
	c.RegisterCallback(SwapMidCB, union)
	c.RegisterCallback(SwapRootCB, final)

	initial := make(map[core.TaskId][]core.Payload)
	for i := 0; i < n; i++ {
		initial[core.TaskId(i)] = []core.Payload{u64(1 << i)}
	}
	out, err := c.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1<<n) - 1
	for _, id := range g.TileIds() {
		if got := getU64(out[id][0]); got != want {
			t.Errorf("tile %d mask = %b, want %b", id, got, want)
		}
	}
}

// Property: at every round transition the partner relation is an involution
// and tasks only communicate within their round +/- 1.
func TestBinarySwapPartnerProperty(t *testing.T) {
	check := func(d8 uint8) bool {
		d := int(d8%5) + 1
		n := 1 << d
		g, err := NewBinarySwap(n)
		if err != nil {
			return false
		}
		for _, id := range g.TaskIds() {
			r, i := g.RoundOf(id)
			task, ok := g.Task(id)
			if !ok {
				return false
			}
			if r < g.Rounds() {
				partner := i ^ (1 << r)
				// The partner's send slot must target our successor.
				ptask, _ := g.Task(core.TaskId(r*n + partner))
				if ptask.Outgoing[1][0] != core.TaskId((r+1)*n+i) {
					return false
				}
				_ = task
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
