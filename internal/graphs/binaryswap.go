package graphs

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Callback slots of a BinarySwap, in the order returned by Callbacks().
const (
	// SwapLeafCB runs at round 0 (e.g. rendering the local block). A leaf
	// emits two outputs: the half it keeps and the half it sends to its
	// round-0 partner.
	SwapLeafCB core.CallbackId = iota
	// SwapMidCB runs at intermediate rounds: composite the two incoming
	// halves and split the result for the next exchange.
	SwapMidCB
	// SwapRootCB runs at the final round: composite the two halves into the
	// finished tile and emit it on the sink slot (e.g. write it to disk).
	SwapRootCB
)

// BinarySwap is the binary-swap compositing dataflow (Ma et al. 1994,
// Fig. 7 of the paper) over n = 2^d participants. Unlike a reduction, the
// number of active tasks stays constant: in every round each task pairs
// with a partner, keeps half of its current image and swaps the other half.
// After d rounds each of the n final tasks owns one tile of the result.
//
// Task ids are round-major: task (r, i) has id r*n + i for rounds
// r = 0 (leaves) .. d (final tiles). In the transition from round r to
// round r+1, task i exchanges with partner i XOR 2^r.
type BinarySwap struct {
	n int // participants per round
	d int // swap rounds (log2 n)
}

// NewBinarySwap returns a binary-swap dataflow over n participants; n must
// be a power of two.
func NewBinarySwap(n int) (*BinarySwap, error) {
	if n < 1 {
		return nil, fmt.Errorf("graphs: binary swap needs at least one participant, got %d", n)
	}
	d, p := 0, 1
	for p < n {
		p *= 2
		d++
	}
	if p != n {
		return nil, fmt.Errorf("graphs: binary swap participant count %d is not a power of two", n)
	}
	return &BinarySwap{n: n, d: d}, nil
}

// Participants returns the number of tasks per round.
func (g *BinarySwap) Participants() int { return g.n }

// Rounds returns the number of swap rounds (log2 of the participant count).
func (g *BinarySwap) Rounds() int { return g.d }

// Size implements core.TaskGraph.
func (g *BinarySwap) Size() int { return (g.d + 1) * g.n }

// TaskIds implements core.TaskGraph.
func (g *BinarySwap) TaskIds() []core.TaskId { return core.ContiguousIds(g.Size()) }

// Callbacks implements core.TaskGraph.
func (g *BinarySwap) Callbacks() []core.CallbackId {
	return []core.CallbackId{SwapLeafCB, SwapMidCB, SwapRootCB}
}

// LeafIds returns the ids of the round-0 tasks in block order.
func (g *BinarySwap) LeafIds() []core.TaskId { return core.ContiguousIds(g.n) }

// TileIds returns the ids of the final-round tasks; task i owns tile i of
// the composited image.
func (g *BinarySwap) TileIds() []core.TaskId {
	ids := make([]core.TaskId, g.n)
	for i := range ids {
		ids[i] = core.TaskId(g.d*g.n + i)
	}
	return ids
}

// RoundOf returns the round and participant index of a task id.
func (g *BinarySwap) RoundOf(id core.TaskId) (round, index int) {
	return int(id) / g.n, int(id) % g.n
}

// Task implements core.TaskGraph.
func (g *BinarySwap) Task(id core.TaskId) (core.Task, bool) {
	if id == core.ExternalInput || int(id) < 0 || int(id) >= g.Size() {
		return core.Task{}, false
	}
	r, i := g.RoundOf(id)
	t := core.Task{Id: id}

	switch {
	case r == 0:
		t.Callback = SwapLeafCB
		t.Incoming = []core.TaskId{core.ExternalInput}
	case r == g.d:
		t.Callback = SwapRootCB
	default:
		t.Callback = SwapMidCB
	}
	if r > 0 {
		// Inputs: kept half from own predecessor, swapped half from the
		// round-(r-1) partner. Partner bit for transition r-1 -> r is r-1.
		partner := i ^ (1 << (r - 1))
		t.Incoming = []core.TaskId{
			core.TaskId((r-1)*g.n + i),
			core.TaskId((r-1)*g.n + partner),
		}
	}
	if r < g.d {
		partner := i ^ (1 << r)
		t.Outgoing = [][]core.TaskId{
			{core.TaskId((r+1)*g.n + i)},       // half we keep
			{core.TaskId((r+1)*g.n + partner)}, // half we send
		}
	} else {
		// Final round: one sink output, the finished tile.
		t.Outgoing = [][]core.TaskId{{}}
	}
	if g.d == 0 {
		// Single participant: render and write in one task.
		t.Callback = SwapRootCB
		t.Incoming = []core.TaskId{core.ExternalInput}
	}
	return t, true
}

var _ core.TaskGraph = (*BinarySwap)(nil)
