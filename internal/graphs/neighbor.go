package graphs

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Callback slots of a Neighbor2D, in the order returned by Callbacks().
const (
	// NeighborExtractCB runs in phase 0 on every grid cell: read the local
	// block and produce one payload for itself plus one per existing
	// neighbor (e.g. the overlapping halo regions).
	NeighborExtractCB core.CallbackId = iota
	// NeighborProcessCB runs in phase 1 on every grid cell: combine the
	// local payload with the neighbors' payloads (e.g. evaluate the
	// alignment of adjacent volumes) and emit the per-cell sink output.
	NeighborProcessCB
)

// Direction indexes the 2-D neighbor order used consistently for output
// slots and input slots: West, East, North, South.
type Direction int

// Neighbor directions in canonical slot order.
const (
	West Direction = iota
	East
	North
	South
)

var dirOffsets = [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}

// Neighbor2D is a two-phase halo-exchange dataflow over a W x H grid of
// cells (Fig. 8 of the paper uses it for volume registration). Each cell
// has an extract task (phase 0, id = y*W + x) and a process task (phase 1,
// id = W*H + y*W + x).
//
// An extract task emits one payload kept by its own process task plus one
// payload per existing neighbor (distinct data per direction, e.g. the
// facing overlap region). A process task receives its own extract payload
// first, then the payloads of its West, East, North, South neighbors (those
// that exist), and emits one sink output.
type Neighbor2D struct {
	w, h int
}

// NewNeighbor2D returns a neighbor dataflow over a w x h cell grid.
func NewNeighbor2D(w, h int) (*Neighbor2D, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("graphs: neighbor grid must be at least 1x1, got %dx%d", w, h)
	}
	return &Neighbor2D{w: w, h: h}, nil
}

// Width returns the number of grid columns.
func (g *Neighbor2D) Width() int { return g.w }

// Height returns the number of grid rows.
func (g *Neighbor2D) Height() int { return g.h }

// Cells returns the number of grid cells.
func (g *Neighbor2D) Cells() int { return g.w * g.h }

// Size implements core.TaskGraph.
func (g *Neighbor2D) Size() int { return 2 * g.w * g.h }

// TaskIds implements core.TaskGraph.
func (g *Neighbor2D) TaskIds() []core.TaskId { return core.ContiguousIds(g.Size()) }

// Callbacks implements core.TaskGraph.
func (g *Neighbor2D) Callbacks() []core.CallbackId {
	return []core.CallbackId{NeighborExtractCB, NeighborProcessCB}
}

// ExtractId returns the phase-0 task id of cell (x, y).
func (g *Neighbor2D) ExtractId(x, y int) core.TaskId { return core.TaskId(y*g.w + x) }

// ProcessId returns the phase-1 task id of cell (x, y).
func (g *Neighbor2D) ProcessId(x, y int) core.TaskId {
	return core.TaskId(g.w*g.h + y*g.w + x)
}

// CellOf returns the grid coordinates and phase of a task id.
func (g *Neighbor2D) CellOf(id core.TaskId) (x, y, phase int) {
	i := int(id)
	if i >= g.w*g.h {
		phase = 1
		i -= g.w * g.h
	}
	return i % g.w, i / g.w, phase
}

// neighbors returns the existing neighbors of (x, y) in canonical order,
// together with their directions.
func (g *Neighbor2D) neighbors(x, y int) (xs, ys []int, dirs []Direction) {
	for d, off := range dirOffsets {
		nx, ny := x+off[0], y+off[1]
		if nx < 0 || nx >= g.w || ny < 0 || ny >= g.h {
			continue
		}
		xs = append(xs, nx)
		ys = append(ys, ny)
		dirs = append(dirs, Direction(d))
	}
	return xs, ys, dirs
}

// NeighborDirs returns the directions of the existing neighbors of cell
// (x, y) in canonical slot order: the i-th entry corresponds to extract
// output slot i+1 and to process input slot i+1.
func (g *Neighbor2D) NeighborDirs(x, y int) []Direction {
	_, _, dirs := g.neighbors(x, y)
	return dirs
}

// ExtractSlot returns the output-slot index of an extract task that carries
// the payload destined for the neighbor in direction dir (slot 0 is always
// the cell's own process task). ok is false when that neighbor does not
// exist.
func (g *Neighbor2D) ExtractSlot(x, y int, dir Direction) (slot int, ok bool) {
	_, _, dirs := g.neighbors(x, y)
	for i, d := range dirs {
		if d == dir {
			return i + 1, true
		}
	}
	return 0, false
}

// Task implements core.TaskGraph.
func (g *Neighbor2D) Task(id core.TaskId) (core.Task, bool) {
	if id == core.ExternalInput || int(id) < 0 || int(id) >= g.Size() {
		return core.Task{}, false
	}
	x, y, phase := g.CellOf(id)
	t := core.Task{Id: id}
	if phase == 0 {
		t.Callback = NeighborExtractCB
		t.Incoming = []core.TaskId{core.ExternalInput}
		xs, ys, _ := g.neighbors(x, y)
		t.Outgoing = make([][]core.TaskId, 1+len(xs))
		t.Outgoing[0] = []core.TaskId{g.ProcessId(x, y)}
		for i := range xs {
			t.Outgoing[i+1] = []core.TaskId{g.ProcessId(xs[i], ys[i])}
		}
		return t, true
	}
	t.Callback = NeighborProcessCB
	t.Incoming = []core.TaskId{g.ExtractId(x, y)}
	xs, ys, _ := g.neighbors(x, y)
	for i := range xs {
		t.Incoming = append(t.Incoming, g.ExtractId(xs[i], ys[i]))
	}
	t.Outgoing = [][]core.TaskId{{}}
	return t, true
}

var _ core.TaskGraph = (*Neighbor2D)(nil)

// Callback slots of a Gather, in the order returned by Callbacks().
const (
	// GatherLeafCB runs at every leaf.
	GatherLeafCB core.CallbackId = iota
	// GatherRootCB runs at the root, which receives all leaf outputs in
	// leaf order and emits the sink output.
	GatherRootCB
)

// Gather is a flat, single-level gather: n leaves each take one external
// input and send one output to a root task that emits the sink output. It
// is the degenerate valence-n reduction and is handy for collecting
// per-block statistics.
type Gather struct {
	n int
}

// NewGather returns a gather over n leaves.
func NewGather(n int) (*Gather, error) {
	if n < 1 {
		return nil, fmt.Errorf("graphs: gather needs at least one leaf, got %d", n)
	}
	return &Gather{n: n}, nil
}

// Leafs returns the number of leaves.
func (g *Gather) Leafs() int { return g.n }

// Root returns the id of the root task.
func (g *Gather) Root() core.TaskId { return core.TaskId(g.n) }

// LeafIds returns the leaf task ids, 0..n-1.
func (g *Gather) LeafIds() []core.TaskId { return core.ContiguousIds(g.n) }

// Size implements core.TaskGraph.
func (g *Gather) Size() int { return g.n + 1 }

// TaskIds implements core.TaskGraph.
func (g *Gather) TaskIds() []core.TaskId { return core.ContiguousIds(g.n + 1) }

// Callbacks implements core.TaskGraph.
func (g *Gather) Callbacks() []core.CallbackId {
	return []core.CallbackId{GatherLeafCB, GatherRootCB}
}

// Task implements core.TaskGraph.
func (g *Gather) Task(id core.TaskId) (core.Task, bool) {
	if id == core.ExternalInput || int(id) < 0 || int(id) > g.n {
		return core.Task{}, false
	}
	t := core.Task{Id: id}
	if int(id) < g.n {
		t.Callback = GatherLeafCB
		t.Incoming = []core.TaskId{core.ExternalInput}
		t.Outgoing = [][]core.TaskId{{core.TaskId(g.n)}}
		return t, true
	}
	t.Callback = GatherRootCB
	t.Incoming = make([]core.TaskId, g.n)
	for i := 0; i < g.n; i++ {
		t.Incoming[i] = core.TaskId(i)
	}
	t.Outgoing = [][]core.TaskId{{}}
	return t, true
}

var _ core.TaskGraph = (*Gather)(nil)
