package graphs

import (
	"encoding/binary"
	"strings"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

func u32p(v uint32) core.Payload {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return core.Buffer(b)
}

func getU32(p core.Payload) uint32 { return binary.LittleEndian.Uint32(p.Data) }

// TestBuilderSubIterate composes an iterated counter loop with a downstream
// wrap-up task through the fluent Sub API, and runs it serially end to end.
func TestBuilderSubIterate(t *testing.T) {
	const (
		countCB core.CallbackId = 10
		writeCB core.CallbackId = 11
	)
	body := core.NewExplicitGraph([]core.Task{{
		Id:       0,
		Callback: countCB,
		Incoming: []core.TaskId{core.ExternalInput},
		Outgoing: [][]core.TaskId{nil},
	}})
	pred := func(iter int, sinks map[core.TaskId][]core.Payload) (bool, error) {
		return getU32(sinks[0][0]) >= 3, nil
	}

	b := NewBuilder()
	loop := b.Sub(body, nil).Iterate(pred, MaxIter(8), Gate(0, 0, 0, 0))
	write := core.Task{
		Id:       Pid(7, 0),
		Callback: writeCB,
		Incoming: []core.TaskId{core.ExternalInput},
		Outgoing: [][]core.TaskId{nil},
	}
	// The loop's final sinks live on the decision tasks; wire each possible
	// converged iteration... the blessed pattern is to consume Final() from
	// the results instead, so the wrap-up here just proves composition works
	// alongside an iterated sub.
	g, err := b.AddTask(write).
		Connect(loop.Id(core.DecisionId(loop.Iter().MaxIter()-1)), 0, Pid(7, 0), 0).
		Graph()
	if err != nil {
		t.Fatal(err)
	}
	if loop.Iter() == nil {
		t.Fatal("Iter() lost the iterative graph")
	}
	if got, want := g.Size(), loop.Iter().Size()+1; got != want {
		t.Fatalf("composed size %d, want %d", got, want)
	}

	s := core.NewSerial()
	if err := s.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	s.RegisterCallback(countCB, func(in []core.Payload, _ core.TaskId) ([]core.Payload, error) {
		return []core.Payload{u32p(getU32(in[0]) + 1)}, nil
	})
	s.RegisterCallback(writeCB, func(in []core.Payload, _ core.TaskId) ([]core.Payload, error) {
		return []core.Payload{in[0]}, nil
	})
	if err := loop.Iter().RegisterDecision(s); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(map[core.TaskId][]core.Payload{loop.Id(0): {u32p(0)}})
	if err != nil {
		t.Fatal(err)
	}

	iter, sinks, err := loop.Final(res)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 2 || getU32(sinks[0][0]) != 3 {
		t.Fatalf("Final = (iter %d, value %d), want (2, 3)", iter, getU32(sinks[0][0]))
	}
	// The wrap-up consumed the bound iteration's (dead) drain, so it was
	// cancelled — composition is intact, results contain no dead tokens.
	for id, ps := range res {
		for _, p := range ps {
			if core.IsDead(p) {
				t.Fatalf("dead token leaked at task %d", id)
			}
		}
	}
}

// TestBuilderConnectIf wires a conditional router between two sub-tasks and
// checks only the chosen branch survives.
func TestBuilderConnectIf(t *testing.T) {
	const (
		routeCB core.CallbackId = 20
		sideCB  core.CallbackId = 21
	)
	mk := func(id core.TaskId, cb core.CallbackId, outs int) core.Task {
		t := core.Task{Id: id, Callback: cb, Incoming: []core.TaskId{core.ExternalInput}}
		t.Outgoing = make([][]core.TaskId, outs)
		return t
	}
	for _, branch := range []int{0, 1} {
		b := NewBuilder().
			AddTask(mk(Pid(0, 0), routeCB, 2)).
			AddTask(mk(Pid(1, 0), sideCB, 1)).
			AddTask(mk(Pid(1, 1), sideCB, 1)).
			ConnectIf(Pid(0, 0), 0, 0, Pid(1, 0), 0).
			ConnectIf(Pid(0, 0), 1, 1, Pid(1, 1), 0)
		g, err := b.Graph()
		if err != nil {
			t.Fatal(err)
		}
		rt, _ := g.Task(Pid(0, 0))
		if rt.Branches != 2 || rt.Cond[0] != 0 || rt.Cond[1] != 1 {
			t.Fatalf("router cond not assembled: %+v", rt)
		}

		s := core.NewSerial()
		if err := s.Initialize(g, nil); err != nil {
			t.Fatal(err)
		}
		br := branch
		s.RegisterCallback(routeCB, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
			tk, _ := g.Task(id)
			return core.SelectBranch(tk, br, []core.Payload{u32p(1), u32p(2)})
		})
		s.RegisterCallback(sideCB, func(in []core.Payload, _ core.TaskId) ([]core.Payload, error) {
			return []core.Payload{in[0]}, nil
		})
		res, err := s.Run(map[core.TaskId][]core.Payload{Pid(0, 0): {u32p(0)}})
		if err != nil {
			t.Fatal(err)
		}
		want, loser := Pid(1, 0), Pid(1, 1)
		if branch == 1 {
			want, loser = Pid(1, 1), Pid(1, 0)
		}
		if len(res[want]) != 1 || len(res[loser]) != 0 {
			t.Fatalf("branch %d: results %v", branch, res)
		}
	}
}

func TestBuilderSubErrors(t *testing.T) {
	body := core.NewExplicitGraph([]core.Task{{
		Id: 0, Callback: 1,
		Incoming: []core.TaskId{core.ExternalInput},
		Outgoing: [][]core.TaskId{nil},
	}})
	always := func(int, map[core.TaskId][]core.Payload) (bool, error) { return true, nil }

	// Iterate after materialization.
	b := NewBuilder()
	s := b.Sub(body, nil)
	if _, err := b.Graph(); err != nil {
		t.Fatal(err)
	}
	s.Iterate(always, Gate(0, 0, 0, 0))
	if _, err := b.Graph(); err == nil || !strings.Contains(err.Error(), "after its sub-graph was composed") {
		t.Fatalf("late Iterate accepted: %v", err)
	}

	// Double Iterate.
	b2 := NewBuilder()
	b2.Sub(body, nil).Iterate(always, Gate(0, 0, 0, 0)).Iterate(always, Gate(0, 0, 0, 0))
	if _, err := b2.Graph(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("double Iterate accepted: %v", err)
	}

	// Iterate configuration errors surface at Graph.
	b3 := NewBuilder()
	b3.Sub(body, nil).Iterate(always)
	if _, err := b3.Graph(); err == nil || !strings.Contains(err.Error(), "Gate") {
		t.Fatalf("gateless Iterate accepted: %v", err)
	}

	// Final on a non-iterated sub.
	b4 := NewBuilder()
	s4 := b4.Sub(body, nil)
	if _, _, err := s4.Final(nil); err == nil {
		t.Fatal("Final on a plain sub accepted")
	}

	// Sub auto-prefixes skip explicit Add prefixes.
	b5 := NewBuilder().Add(0, body, nil)
	s5 := b5.Sub(body, nil)
	if s5.Prefix() == 0 {
		t.Fatal("Sub reused an explicitly taken prefix")
	}
	if _, err := b5.Graph(); err != nil {
		t.Fatal(err)
	}

	// ConnectIf branch conflicts.
	mk := core.Task{Id: Pid(0, 0), Callback: 1, Incoming: []core.TaskId{core.ExternalInput}, Outgoing: [][]core.TaskId{nil, nil}}
	sink := core.Task{Id: Pid(1, 0), Callback: 1, Incoming: []core.TaskId{core.ExternalInput, core.ExternalInput}, Outgoing: [][]core.TaskId{nil}}
	b6 := NewBuilder().AddTask(mk).AddTask(sink).
		ConnectIf(Pid(0, 0), 0, 0, Pid(1, 0), 0).
		ConnectIf(Pid(0, 0), 0, 1, Pid(1, 0), 1)
	if _, err := b6.Graph(); err == nil || !strings.Contains(err.Error(), "assigned to branches") {
		t.Fatalf("conflicting branch assignment accepted: %v", err)
	}
	b7 := NewBuilder().AddTask(mk).AddTask(sink).
		ConnectIf(Pid(0, 0), 0, -1, Pid(1, 0), 0)
	if _, err := b7.Graph(); err == nil || !strings.Contains(err.Error(), "negative branch") {
		t.Fatalf("negative branch accepted: %v", err)
	}

	// A dangling branch (declared but unreferenced) is caught by Validate.
	b8 := NewBuilder().AddTask(mk).AddTask(sink).
		ConnectIf(Pid(0, 0), 0, 1, Pid(1, 0), 0)
	if _, err := b8.Graph(); err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("dangling branch accepted: %v", err)
	}
}
