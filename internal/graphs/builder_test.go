package graphs

import (
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

// TestBuilderListing1Pattern composes the Listing-1 dataflow explicitly: a
// reduction whose root feeds an extra wrap-up task ("write image").
func TestBuilderListing1Pattern(t *testing.T) {
	red, _ := NewReduction(4, 2)
	const (
		renderCB core.CallbackId = iota
		compositeCB
		rootCompositeCB
		writeCB
	)
	writeTask := core.Task{
		Id:       Pid(1, 0),
		Callback: writeCB,
		Incoming: []core.TaskId{core.ExternalInput},
		Outgoing: [][]core.TaskId{{}},
	}
	g, err := NewBuilder().
		Add(0, red, map[core.CallbackId]core.CallbackId{
			ReduceLeafCB: renderCB,
			ReduceMidCB:  compositeCB,
			ReduceRootCB: rootCompositeCB,
		}).
		AddTask(writeTask).
		Connect(Pid(0, red.Root()), 0, Pid(1, 0), 0).
		Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != red.Size()+1 {
		t.Fatalf("Size = %d", g.Size())
	}
	roots := core.Roots(g)
	if len(roots) != 1 || roots[0] != Pid(1, 0) {
		t.Fatalf("roots = %v", roots)
	}

	// Execute: sum at every reduce stage, wrap-up doubles.
	c := core.NewSerial()
	if err := c.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	c.RegisterCallback(renderCB, sumCB(1))
	c.RegisterCallback(compositeCB, sumCB(1))
	c.RegisterCallback(rootCompositeCB, sumCB(1))
	c.RegisterCallback(writeCB, func(in []core.Payload, id core.TaskId) ([]core.Payload, error) {
		return []core.Payload{u64(2 * getU64(in[0]))}, nil
	})
	initial := make(map[core.TaskId][]core.Payload)
	for i, id := range red.LeafIds() {
		initial[Pid(0, id)] = []core.Payload{u64(uint64(i + 1))}
	}
	out, err := c.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	if got := getU64(out[Pid(1, 0)][0]); got != 20 {
		t.Errorf("wrap-up output = %d, want 20", got)
	}
}

func TestBuilderComposesReductionAndBroadcast(t *testing.T) {
	red, _ := NewReduction(4, 2)
	bc, _ := NewBroadcast(4, 2)
	g, err := NewBuilder().
		Add(0, red, map[core.CallbackId]core.CallbackId{ReduceLeafCB: 0, ReduceMidCB: 1, ReduceRootCB: 2}).
		Add(1, bc, map[core.CallbackId]core.CallbackId{BcastSourceCB: 3, BcastRelayCB: 4, BcastSinkCB: 5}).
		Connect(Pid(0, 0), 0, Pid(1, 0), 0).
		Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != red.Size()+bc.Size() {
		t.Errorf("Size = %d", g.Size())
	}
	if got := len(core.Leaves(g)); got != 4 {
		t.Errorf("leaves = %d", got)
	}
	if got := len(core.Roots(g)); got != 4 {
		t.Errorf("roots = %d", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	red, _ := NewReduction(2, 2)

	// Duplicate prefix.
	if _, err := NewBuilder().Add(0, red, nil).Add(0, red, nil).Graph(); err == nil {
		t.Error("duplicate prefix should fail")
	}
	// Missing callback mapping.
	if _, err := NewBuilder().Add(0, red, map[core.CallbackId]core.CallbackId{}).Graph(); err == nil {
		t.Error("incomplete callback map should fail")
	}
	// Connect from unknown task.
	if _, err := NewBuilder().Add(0, red, nil).Connect(Pid(5, 0), 0, Pid(0, 0), 0).Graph(); err == nil {
		t.Error("connect from unknown task should fail")
	}
	// Connect to occupied input slot.
	if _, err := NewBuilder().Add(0, red, nil).Connect(Pid(0, 1), 0, Pid(0, 0), 0).Graph(); err == nil {
		t.Error("connect to an already-wired input should fail")
	}
	// Bad slot indices.
	b := NewBuilder().Add(0, red, nil)
	leaf := Pid(0, 1)
	if _, err := b.Connect(leaf, 7, leaf, 0).Graph(); err == nil {
		t.Error("out-of-range output slot should fail")
	}
	// Duplicate AddTask id.
	tk := core.Task{Id: Pid(2, 0), Callback: 0, Outgoing: [][]core.TaskId{{}}}
	if _, err := NewBuilder().AddTask(tk).AddTask(tk).Graph(); err == nil {
		t.Error("duplicate AddTask should fail")
	}
	// Error sticks: further calls keep the first error.
	bb := NewBuilder().Add(0, red, map[core.CallbackId]core.CallbackId{})
	bb.Add(1, red, nil)
	if _, err := bb.Graph(); err == nil {
		t.Error("deferred error should persist")
	}
}

func TestPidPlacesPrefix(t *testing.T) {
	id := Pid(3, 17)
	if uint64(id)>>PrefixShift != 3 || uint64(id)&((1<<PrefixShift)-1) != 17 {
		t.Errorf("Pid = %x", uint64(id))
	}
}
