package graphs

import (
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
)

func TestKWayMergeValidates(t *testing.T) {
	for _, c := range []struct{ leafs, k int }{{1, 2}, {2, 2}, {8, 2}, {64, 8}, {27, 3}} {
		g, err := NewKWayMerge(c.leafs, c.k)
		if err != nil {
			t.Fatalf("NewKWayMerge(%d,%d): %v", c.leafs, c.k, err)
		}
		if err := core.Validate(g); err != nil {
			t.Errorf("Validate(%d,%d): %v", c.leafs, c.k, err)
		}
		if got := len(core.Leaves(g)); got != c.leafs {
			t.Errorf("leaves = %d, want %d", got, c.leafs)
		}
		if got := len(core.Roots(g)); got != c.leafs {
			t.Errorf("sinks = %d, want %d", got, c.leafs)
		}
	}
}

func TestKWayMergeRejectsBadShape(t *testing.T) {
	if _, err := NewKWayMerge(5, 2); err == nil {
		t.Error("5 leaves valence 2 should be rejected")
	}
}

// TestKWayMergeAllReduce: every down-leaf receives the global sum.
func TestKWayMergeAllReduce(t *testing.T) {
	g, err := NewKWayMerge(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewSerial()
	if err := c.Initialize(g, nil); err != nil {
		t.Fatal(err)
	}
	c.RegisterCallback(MergeLeafCB, sumCB(1))
	c.RegisterCallback(MergeMidCB, sumCB(1))
	c.RegisterCallback(MergeRootCB, sumCB(1))
	c.RegisterCallback(MergeRelayCB, sumCB(1))
	c.RegisterCallback(MergeFinalCB, sumCB(1))

	initial := make(map[core.TaskId][]core.Payload)
	var want uint64
	for i, id := range g.UpLeafIds() {
		initial[id] = []core.Payload{u64(uint64(i) * 3)}
		want += uint64(i) * 3
	}
	out, err := c.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	downs := g.DownLeafIds()
	if len(out) != len(downs) {
		t.Fatalf("sink count = %d, want %d", len(out), len(downs))
	}
	for _, id := range downs {
		if got := getU64(out[id][0]); got != want {
			t.Errorf("down leaf %d = %d, want %d", id, got, want)
		}
	}
}

func TestKWayMergeDegenerate(t *testing.T) {
	g, err := NewKWayMerge(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(g); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 2 {
		t.Fatalf("Size = %d, want 2", g.Size())
	}
	up, _ := g.Task(0)
	down, _ := g.Task(1)
	if up.Outgoing[0][0] != 1 || down.Incoming[0] != 0 {
		t.Errorf("degenerate wiring: up=%+v down=%+v", up, down)
	}
	if down.Callback != MergeFinalCB {
		t.Errorf("down callback = %d", down.Callback)
	}
}

func TestKWayMergeCallbackAssignment(t *testing.T) {
	g, _ := NewKWayMerge(4, 2) // nt = 7
	for _, id := range g.UpLeafIds() {
		task, _ := g.Task(id)
		if task.Callback != MergeLeafCB {
			t.Errorf("up leaf %d callback = %d", id, task.Callback)
		}
	}
	root, _ := g.Task(0)
	if root.Callback != MergeRootCB {
		t.Errorf("root callback = %d", root.Callback)
	}
	downRoot, _ := g.Task(7)
	if downRoot.Callback != MergeRelayCB || downRoot.Incoming[0] != 0 {
		t.Errorf("down root = %+v", downRoot)
	}
	for _, id := range g.DownLeafIds() {
		task, _ := g.Task(id)
		if task.Callback != MergeFinalCB {
			t.Errorf("down leaf %d callback = %d", id, task.Callback)
		}
	}
}

func TestNeighbor2DValidates(t *testing.T) {
	for _, c := range []struct{ w, h int }{{1, 1}, {2, 1}, {1, 3}, {3, 3}, {5, 4}} {
		g, err := NewNeighbor2D(c.w, c.h)
		if err != nil {
			t.Fatalf("NewNeighbor2D(%d,%d): %v", c.w, c.h, err)
		}
		if err := core.Validate(g); err != nil {
			t.Errorf("Validate(%d,%d): %v", c.w, c.h, err)
		}
		if g.Size() != 2*c.w*c.h {
			t.Errorf("Size = %d", g.Size())
		}
	}
	if _, err := NewNeighbor2D(0, 3); err == nil {
		t.Error("0-width grid should be rejected")
	}
}

func TestNeighbor2DStructure(t *testing.T) {
	g, _ := NewNeighbor2D(3, 3)
	// Center cell (1,1): extract has self + 4 neighbor slots.
	ex, _ := g.Task(g.ExtractId(1, 1))
	if len(ex.Outgoing) != 5 {
		t.Fatalf("center extract slots = %d, want 5", len(ex.Outgoing))
	}
	if ex.Outgoing[0][0] != g.ProcessId(1, 1) {
		t.Errorf("slot 0 should go to own process task")
	}
	// Corner cell (0,0): extract has self + 2 neighbors (E, S).
	cx, _ := g.Task(g.ExtractId(0, 0))
	if len(cx.Outgoing) != 3 {
		t.Fatalf("corner extract slots = %d, want 3", len(cx.Outgoing))
	}
	if cx.Outgoing[1][0] != g.ProcessId(1, 0) || cx.Outgoing[2][0] != g.ProcessId(0, 1) {
		t.Errorf("corner neighbor targets = %v", cx.Outgoing)
	}
	// Center process: inputs from own + 4 neighbor extracts, sink output.
	pr, _ := g.Task(g.ProcessId(1, 1))
	if len(pr.Incoming) != 5 || !pr.IsRoot() {
		t.Errorf("center process = %+v", pr)
	}
	if pr.Incoming[0] != g.ExtractId(1, 1) {
		t.Error("process input 0 should be own extract")
	}
}

func TestNeighbor2DExtractSlot(t *testing.T) {
	g, _ := NewNeighbor2D(3, 3)
	if s, ok := g.ExtractSlot(1, 1, East); !ok || s != 2 {
		t.Errorf("ExtractSlot(center, East) = %d, %v", s, ok)
	}
	if _, ok := g.ExtractSlot(0, 0, West); ok {
		t.Error("corner has no West neighbor")
	}
	if s, ok := g.ExtractSlot(0, 0, South); !ok || s != 2 {
		t.Errorf("ExtractSlot(corner, South) = %d, %v", s, ok)
	}
}

func TestNeighbor2DCellOf(t *testing.T) {
	g, _ := NewNeighbor2D(4, 3)
	x, y, ph := g.CellOf(g.ProcessId(2, 1))
	if x != 2 || y != 1 || ph != 1 {
		t.Errorf("CellOf(process(2,1)) = %d,%d,%d", x, y, ph)
	}
	x, y, ph = g.CellOf(g.ExtractId(3, 2))
	if x != 3 || y != 2 || ph != 0 {
		t.Errorf("CellOf(extract(3,2)) = %d,%d,%d", x, y, ph)
	}
}

func TestGather(t *testing.T) {
	g, err := NewGather(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(g); err != nil {
		t.Fatal(err)
	}
	c := core.NewSerial()
	c.Initialize(g, nil)
	c.RegisterCallback(GatherLeafCB, sumCB(1))
	c.RegisterCallback(GatherRootCB, sumCB(1))
	initial := make(map[core.TaskId][]core.Payload)
	for i := 0; i < 5; i++ {
		initial[core.TaskId(i)] = []core.Payload{u64(uint64(i))}
	}
	out, err := c.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	if got := getU64(out[g.Root()][0]); got != 10 {
		t.Errorf("gather sum = %d, want 10", got)
	}
	if _, err := NewGather(0); err == nil {
		t.Error("0-leaf gather should be rejected")
	}
}
