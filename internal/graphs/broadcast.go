package graphs

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Callback slots of a Broadcast, in the order returned by Callbacks().
const (
	// BcastSourceCB runs at the root, which receives the external input.
	BcastSourceCB core.CallbackId = iota
	// BcastRelayCB runs at internal nodes, forwarding the data downward.
	BcastRelayCB
	// BcastSinkCB runs at the leaves, which produce the sink outputs.
	BcastSinkCB
)

// Broadcast is a k-way broadcast tree over k^d leaves: the mirror image of a
// Reduction. Task 0 is the root and receives one external input; every node
// forwards one output, multicast to its k children; leaves emit sink
// outputs. The paper's merge-tree dataflow uses such relay trees to fan
// augmented boundary trees out to the correction tasks without overloading
// a single join task.
type Broadcast struct {
	k      int
	d      int
	leafs  int
	ntasks int
}

// NewBroadcast returns a broadcast over the given number of leaves with the
// given valence (fan-out). The leaf count must be a power of the valence.
func NewBroadcast(leafs, valence int) (*Broadcast, error) {
	r, err := NewReduction(leafs, valence)
	if err != nil {
		return nil, fmt.Errorf("graphs: broadcast: %w", err)
	}
	return &Broadcast{k: r.k, d: r.d, leafs: r.leafs, ntasks: r.ntasks}, nil
}

// Valence returns the fan-out of the tree.
func (g *Broadcast) Valence() int { return g.k }

// Depth returns the number of broadcast levels.
func (g *Broadcast) Depth() int { return g.d }

// Leafs returns the number of leaf tasks.
func (g *Broadcast) Leafs() int { return g.leafs }

// Size implements core.TaskGraph.
func (g *Broadcast) Size() int { return g.ntasks }

// TaskIds implements core.TaskGraph.
func (g *Broadcast) TaskIds() []core.TaskId { return core.ContiguousIds(g.ntasks) }

// Callbacks implements core.TaskGraph.
func (g *Broadcast) Callbacks() []core.CallbackId {
	return []core.CallbackId{BcastSourceCB, BcastRelayCB, BcastSinkCB}
}

// Root returns the id of the root (source) task.
func (g *Broadcast) Root() core.TaskId { return 0 }

// LeafIds returns the ids of the leaf tasks in block order.
func (g *Broadcast) LeafIds() []core.TaskId {
	ids := make([]core.TaskId, g.leafs)
	first := g.ntasks - g.leafs
	for i := range ids {
		ids[i] = core.TaskId(first + i)
	}
	return ids
}

// Task implements core.TaskGraph.
func (g *Broadcast) Task(id core.TaskId) (core.Task, bool) {
	i := int(id)
	if id == core.ExternalInput || i < 0 || i >= g.ntasks {
		return core.Task{}, false
	}
	t := core.Task{Id: id}
	if i == 0 {
		t.Callback = BcastSourceCB
		t.Incoming = []core.TaskId{core.ExternalInput}
	} else {
		t.Callback = BcastRelayCB
		t.Incoming = []core.TaskId{core.TaskId((i - 1) / g.k)}
	}
	isLeaf := i >= g.ntasks-g.leafs
	if isLeaf {
		t.Callback = BcastSinkCB
		t.Outgoing = [][]core.TaskId{{}}
	} else {
		children := make([]core.TaskId, g.k)
		for c := 0; c < g.k; c++ {
			children[c] = core.TaskId(i*g.k + c + 1)
		}
		// A single output slot multicast to all children: every child
		// receives (a copy of) the same payload.
		t.Outgoing = [][]core.TaskId{children}
	}
	if g.ntasks == 1 {
		// Degenerate single-task broadcast: source with a sink output.
		t.Callback = BcastSourceCB
	}
	return t, true
}

var _ core.TaskGraph = (*Broadcast)(nil)
