package graphs

import (
	"strings"
	"testing"

	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/dot"
)

// TestFig07BinarySwapDot renders the binary-swap dataflow of Fig. 7 (8
// blocks: render leaves, swap rounds, final tile writers) and checks its
// structure in the Dot output.
func TestFig07BinarySwapDot(t *testing.T) {
	g, err := NewBinarySwap(8)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err = dot.Write(&b, g, dot.Options{
		Name: "fig7",
		Labels: map[core.CallbackId]string{
			SwapLeafCB: "render", SwapMidCB: "swap", SwapRootCB: "tile",
		},
		RankByLevel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// 4 rounds of 8 tasks each (leaves + 2 mid rounds + tiles).
	if got := strings.Count(out, "fillcolor"); got != 32 {
		t.Errorf("node count = %d, want 32", got)
	}
	// Every non-final task has exactly 2 outgoing edges: 24 * 2 = 48.
	if got := strings.Count(out, "->"); got != 48 {
		t.Errorf("edge count = %d, want 48", got)
	}
	for _, want := range []string{"render", "swap", "tile", "rank=same"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestFig08NeighborDot renders the neighbor registration dataflow of
// Fig. 8 (a 2x2 volume grid: per-volume read tasks feeding the correlate
// tasks of their neighbors).
func TestFig08NeighborDot(t *testing.T) {
	g, err := NewNeighbor2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err = dot.Write(&b, g, dot.Options{
		Name: "fig8",
		Labels: map[core.CallbackId]string{
			NeighborExtractCB: "read", NeighborProcessCB: "correlate",
		},
		RankByLevel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "fillcolor"); got != 8 {
		t.Errorf("node count = %d, want 8", got)
	}
	// Each corner cell has self + 2 neighbor edges: 4 * 3 = 12.
	if got := strings.Count(out, "->"); got != 12 {
		t.Errorf("edge count = %d, want 12", got)
	}
	if !strings.Contains(out, "read") || !strings.Contains(out, "correlate") {
		t.Error("labels missing")
	}
}
