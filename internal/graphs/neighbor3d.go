package graphs

import (
	"fmt"

	"github.com/babelflow/babelflow-go/internal/core"
)

// Direction3D indexes the 3-D neighbor order used for output and input
// slots: West, East, North, South, Down, Up.
type Direction3D int

// Neighbor directions in canonical slot order.
const (
	West3D Direction3D = iota
	East3D
	North3D
	South3D
	Down3D
	Up3D
)

var dirOffsets3D = [6][3]int{
	{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1},
}

// Neighbor3D is the three-dimensional generalization of Neighbor2D: a
// two-phase halo-exchange dataflow over a W x H x D grid of cells with
// 6-connectivity. Extract tasks occupy ids [0, W*H*D); process tasks the
// next W*H*D ids.
type Neighbor3D struct {
	w, h, d int
}

// NewNeighbor3D returns a neighbor dataflow over a w x h x d cell grid.
func NewNeighbor3D(w, h, d int) (*Neighbor3D, error) {
	if w < 1 || h < 1 || d < 1 {
		return nil, fmt.Errorf("graphs: neighbor grid must be at least 1x1x1, got %dx%dx%d", w, h, d)
	}
	return &Neighbor3D{w: w, h: h, d: d}, nil
}

// Cells returns the number of grid cells.
func (g *Neighbor3D) Cells() int { return g.w * g.h * g.d }

// Size implements core.TaskGraph.
func (g *Neighbor3D) Size() int { return 2 * g.Cells() }

// TaskIds implements core.TaskGraph.
func (g *Neighbor3D) TaskIds() []core.TaskId { return core.ContiguousIds(g.Size()) }

// Callbacks implements core.TaskGraph. The callback ids are shared with
// Neighbor2D: NeighborExtractCB and NeighborProcessCB.
func (g *Neighbor3D) Callbacks() []core.CallbackId {
	return []core.CallbackId{NeighborExtractCB, NeighborProcessCB}
}

// ExtractId returns the phase-0 task id of cell (x, y, z).
func (g *Neighbor3D) ExtractId(x, y, z int) core.TaskId {
	return core.TaskId((z*g.h+y)*g.w + x)
}

// ProcessId returns the phase-1 task id of cell (x, y, z).
func (g *Neighbor3D) ProcessId(x, y, z int) core.TaskId {
	return core.TaskId(g.Cells() + (z*g.h+y)*g.w + x)
}

// CellOf returns the grid coordinates and phase of a task id.
func (g *Neighbor3D) CellOf(id core.TaskId) (x, y, z, phase int) {
	i := int(id)
	if i >= g.Cells() {
		phase = 1
		i -= g.Cells()
	}
	x = i % g.w
	y = (i / g.w) % g.h
	z = i / (g.w * g.h)
	return
}

// NeighborDirs returns the directions of the existing neighbors of cell
// (x, y, z) in canonical slot order: the i-th entry corresponds to extract
// output slot i+1 and process input slot i+1.
func (g *Neighbor3D) NeighborDirs(x, y, z int) []Direction3D {
	var dirs []Direction3D
	for d, off := range dirOffsets3D {
		nx, ny, nz := x+off[0], y+off[1], z+off[2]
		if nx < 0 || nx >= g.w || ny < 0 || ny >= g.h || nz < 0 || nz >= g.d {
			continue
		}
		dirs = append(dirs, Direction3D(d))
	}
	return dirs
}

// Task implements core.TaskGraph.
func (g *Neighbor3D) Task(id core.TaskId) (core.Task, bool) {
	if id == core.ExternalInput || int(id) < 0 || int(id) >= g.Size() {
		return core.Task{}, false
	}
	x, y, z, phase := g.CellOf(id)
	t := core.Task{Id: id}
	dirs := g.NeighborDirs(x, y, z)
	if phase == 0 {
		t.Callback = NeighborExtractCB
		t.Incoming = []core.TaskId{core.ExternalInput}
		t.Outgoing = make([][]core.TaskId, 1+len(dirs))
		t.Outgoing[0] = []core.TaskId{g.ProcessId(x, y, z)}
		for i, d := range dirs {
			off := dirOffsets3D[d]
			t.Outgoing[i+1] = []core.TaskId{g.ProcessId(x+off[0], y+off[1], z+off[2])}
		}
		return t, true
	}
	t.Callback = NeighborProcessCB
	t.Incoming = []core.TaskId{g.ExtractId(x, y, z)}
	for _, d := range dirs {
		off := dirOffsets3D[d]
		t.Incoming = append(t.Incoming, g.ExtractId(x+off[0], y+off[1], z+off[2]))
	}
	t.Outgoing = [][]core.TaskId{{}}
	return t, true
}

var _ core.TaskGraph = (*Neighbor3D)(nil)
