package graphs

import "github.com/babelflow/babelflow-go/internal/core"

// The prototypes name their callback slots with structural roles, so users
// register implementations by role (core.RegisterCallbacks) instead of by
// position in the Callbacks() slice. Each CallbackRoles map covers exactly
// the graph's Callbacks().

// CallbackRoles implements core.RoledGraph: Leaf runs at the tree leaves,
// Inner at internal nodes, Root at the root.
func (g *Reduction) CallbackRoles() map[core.Role]core.CallbackId {
	return map[core.Role]core.CallbackId{
		core.RoleLeaf:  ReduceLeafCB,
		core.RoleInner: ReduceMidCB,
		core.RoleRoot:  ReduceRootCB,
	}
}

// CallbackRoles implements core.RoledGraph: Source runs at the root,
// Relay at internal nodes, Sink at the leaves.
func (g *Broadcast) CallbackRoles() map[core.Role]core.CallbackId {
	return map[core.Role]core.CallbackId{
		core.RoleSource: BcastSourceCB,
		core.RoleRelay:  BcastRelayCB,
		core.RoleSink:   BcastSinkCB,
	}
}

// CallbackRoles implements core.RoledGraph: Leaf runs at round 0, Inner at
// intermediate exchange rounds, Root at the final round.
func (g *BinarySwap) CallbackRoles() map[core.Role]core.CallbackId {
	return map[core.Role]core.CallbackId{
		core.RoleLeaf:  SwapLeafCB,
		core.RoleInner: SwapMidCB,
		core.RoleRoot:  SwapRootCB,
	}
}

// CallbackRoles implements core.RoledGraph: Leaf and Inner cover the
// up-sweep, Root the turn-around, Relay the down-sweep interior and Final
// the down-sweep leaves.
func (g *KWayMerge) CallbackRoles() map[core.Role]core.CallbackId {
	return map[core.Role]core.CallbackId{
		core.RoleLeaf:  MergeLeafCB,
		core.RoleInner: MergeMidCB,
		core.RoleRoot:  MergeRootCB,
		core.RoleRelay: MergeRelayCB,
		core.RoleFinal: MergeFinalCB,
	}
}

// CallbackRoles implements core.RoledGraph: Extract runs in the halo
// exchange phase, Process in the stencil phase.
func (g *Neighbor2D) CallbackRoles() map[core.Role]core.CallbackId {
	return map[core.Role]core.CallbackId{
		core.RoleExtract: NeighborExtractCB,
		core.RoleProcess: NeighborProcessCB,
	}
}

// CallbackRoles implements core.RoledGraph: Extract runs in the halo
// exchange phase, Process in the stencil phase.
func (g *Neighbor3D) CallbackRoles() map[core.Role]core.CallbackId {
	return map[core.Role]core.CallbackId{
		core.RoleExtract: NeighborExtractCB,
		core.RoleProcess: NeighborProcessCB,
	}
}

// CallbackRoles implements core.RoledGraph: Leaf runs at every leaf, Root
// at the gathering task.
func (g *Gather) CallbackRoles() map[core.Role]core.CallbackId {
	return map[core.Role]core.CallbackId{
		core.RoleLeaf: GatherLeafCB,
		core.RoleRoot: GatherRootCB,
	}
}

var (
	_ core.RoledGraph = (*Reduction)(nil)
	_ core.RoledGraph = (*Broadcast)(nil)
	_ core.RoledGraph = (*BinarySwap)(nil)
	_ core.RoledGraph = (*KWayMerge)(nil)
	_ core.RoledGraph = (*Neighbor2D)(nil)
	_ core.RoledGraph = (*Neighbor3D)(nil)
	_ core.RoledGraph = (*Gather)(nil)
)
