// Benchmarks regenerating the paper's evaluation. One benchmark per figure
// (the paper has no numbered tables; Figs. 2, 3, 6, 9 and 10 carry all
// quantitative results), plus ablation benches for the design choices
// DESIGN.md calls out and micro-benchmarks of the real controllers.
//
// The scaling figures execute the real task graphs under the simulated
// Shaheen-II runtime models (internal/sim); each benchmark reports the
// simulated seconds of characteristic points as custom metrics, so `go
// test -bench` output doubles as the figure data. cmd/bfbench prints the
// full series.
package babelflow_test

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"testing"

	babelflow "github.com/babelflow/babelflow-go"
	"github.com/babelflow/babelflow-go/internal/data"
	"github.com/babelflow/babelflow-go/internal/mergetree"
	"github.com/babelflow/babelflow-go/internal/register"
	"github.com/babelflow/babelflow-go/internal/render"
	"github.com/babelflow/babelflow-go/internal/sim"
)

// reportSeries attaches the simulated seconds of each series' first and
// last point as benchmark metrics.
func reportSeries(b *testing.B, rows []sim.Row) {
	b.Helper()
	seen := make(map[string]bool)
	for _, r := range rows {
		if seen[r.Series] {
			continue
		}
		seen[r.Series] = true
		s := sim.SeriesOf(rows, r.Series)
		name := strings.ReplaceAll(r.Series, " ", "_")
		b.ReportMetric(s[0].Seconds, fmt.Sprintf("s(%s@%d)", name, s[0].X))
		b.ReportMetric(s[len(s)-1].Seconds, fmt.Sprintf("s(%s@%d)", name, s[len(s)-1].X))
	}
}

func benchFigure(b *testing.B, name string) {
	var rows []sim.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = sim.Figure(name)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, rows)
}

// BenchmarkFig02_LegionILvsSPMD regenerates Fig. 2: Legion index-launch vs
// SPMD on the merge-tree dataflow (512³ HCCI), 128-2048 cores.
func BenchmarkFig02_LegionILvsSPMD(b *testing.B) { benchFigure(b, "fig2") }

// BenchmarkFig03_LaunchOverheads regenerates Fig. 3: strong scaling of a
// single data-parallel launch (compute, staging, totals for both
// launchers).
func BenchmarkFig03_LaunchOverheads(b *testing.B) { benchFigure(b, "fig3") }

// BenchmarkFig06_MergeTreeRuntimes regenerates Fig. 6: the parallel merge
// tree on Original MPI, MPI, Charm++ and Legion, 128-32768 cores, 1024³.
func BenchmarkFig06_MergeTreeRuntimes(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig09_Registration regenerates Fig. 9: brain-volume
// registration on MPI, Charm++ and Legion, 256-3200 nodes.
func BenchmarkFig09_Registration(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10a_Rendering regenerates Fig. 10a: VTK-style volume
// rendering strong scaling.
func BenchmarkFig10a_Rendering(b *testing.B) { benchFigure(b, "fig10a") }

// BenchmarkFig10b_TotalReduction regenerates Fig. 10b: rendering +
// reduction compositing, total pipeline time.
func BenchmarkFig10b_TotalReduction(b *testing.B) { benchFigure(b, "fig10b") }

// BenchmarkFig10c_TotalBinarySwap regenerates Fig. 10c: rendering +
// binary-swap compositing, total pipeline time.
func BenchmarkFig10c_TotalBinarySwap(b *testing.B) { benchFigure(b, "fig10c") }

// BenchmarkFig10e_ReductionCompositing regenerates Fig. 10e: the
// compositing stage alone, reduction dataflow, IceT vs the runtimes.
func BenchmarkFig10e_ReductionCompositing(b *testing.B) { benchFigure(b, "fig10e") }

// BenchmarkFig10f_BinarySwapCompositing regenerates Fig. 10f: the
// compositing stage alone, binary-swap dataflow.
func BenchmarkFig10f_BinarySwapCompositing(b *testing.B) { benchFigure(b, "fig10f") }

// BenchmarkFig04_FeatureExtraction measures the real (not simulated)
// distributed merge-tree pipeline extracting features from a synthetic
// ignition dataset — the computation whose output Fig. 4 visualizes.
func BenchmarkFig04_FeatureExtraction(b *testing.B) {
	const n = 24
	field := data.SyntheticHCCI(n, n, n, 6, 42)
	decomp, err := data.NewDecomposition(n, n, n, 2, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	graph, err := mergetree.NewGraph(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mergetree.Config{Decomp: decomp, Threshold: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := babelflow.NewMPI()
		if err := c.Initialize(graph, babelflow.NewGraphMap(4, graph)); err != nil {
			b.Fatal(err)
		}
		if err := cfg.Register(c, graph); err != nil {
			b.Fatal(err)
		}
		initial, err := cfg.InitialInputs(field, graph)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(initial); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig05_GraphDot measures building the Fig. 5 merge-tree dataflow
// (the 4-leaf binary instance the figure draws) and rendering it to Dot.
func BenchmarkFig05_GraphDot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := mergetree.NewGraph(4, 2)
		if err != nil {
			b.Fatal(err)
		}
		if err := babelflow.WriteDot(io.Discard, g, babelflow.DotOptions{RankByLevel: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10d_CompositeImage measures the real rendering + compositing
// pipeline producing the final frame (the Fig. 10d image) on the MPI
// controller.
func BenchmarkFig10d_CompositeImage(b *testing.B) {
	const n = 32
	field := data.SyntheticHCCI(n, n, n, 6, 7)
	decomp, err := data.NewDecomposition(n, n, n, 2, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := render.Config{
		Decomp: decomp,
		Camera: render.Camera{Width: n, Height: n},
		TF:     render.TransferFunction{Lo: 0.25, Hi: 1.5, Opacity: 0.4},
	}
	graph, err := babelflow.NewReduction(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := babelflow.NewMPI()
		c.Initialize(graph, babelflow.NewModuloMap(4, graph.Size()))
		if err := cfg.RegisterReduction(c, graph); err != nil {
			b.Fatal(err)
		}
		initial, _ := cfg.InitialInputs(field, graph.LeafIds())
		if _, err := c.Run(initial); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblation_BlockingVsAsync isolates the Fig. 6 Original-MPI gap:
// the same merge-tree workload under asynchronous+threaded vs blocking
// single-threaded communication.
func BenchmarkAblation_BlockingVsAsync(b *testing.B) {
	w, err := sim.MergeTreeWorkload(512, 8, 1024)
	if err != nil {
		b.Fatal(err)
	}
	m := sim.ShaheenII(512)
	for _, mode := range []sim.RuntimeModel{sim.MPI, sim.OriginalMPI} {
		b.Run(mode.String(), func(b *testing.B) {
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res, err = sim.Execute(w, m, mode)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Makespan, "sim-s")
		})
	}
}

// BenchmarkAblation_InMemoryMessages measures the real MPI controller with
// and without the in-memory message optimization (§IV-A) on a single-rank
// merge-tree run, where every message is eligible for the pointer pass.
func BenchmarkAblation_InMemoryMessages(b *testing.B) {
	const n = 24
	field := data.SyntheticHCCI(n, n, n, 6, 42)
	decomp, _ := data.NewDecomposition(n, n, n, 2, 2, 2)
	graph, _ := mergetree.NewGraph(8, 2)
	cfg := mergetree.Config{Decomp: decomp, Threshold: 0.3}
	for _, serialize := range []bool{false, true} {
		name := "in-memory"
		if serialize {
			name = "always-serialize"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := babelflow.NewMPI(babelflow.WithAlwaysSerialize(serialize))
				c.Initialize(graph, babelflow.NewGraphMap(1, graph))
				cfg.Register(c, graph)
				initial, _ := cfg.InitialInputs(field, graph)
				if _, err := c.Run(initial); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_CharmLB contrasts the Charm++ model with and without
// dynamic load balancing under the merge tree's natural imbalance.
func BenchmarkAblation_CharmLB(b *testing.B) {
	w, err := sim.MergeTreeWorkload(4096, 8, 1024)
	if err != nil {
		b.Fatal(err)
	}
	m := sim.ShaheenII(4096)
	for _, dynamic := range []bool{true, false} {
		name := "periodic-lb"
		if !dynamic {
			name = "no-lb"
		}
		b.Run(name, func(b *testing.B) {
			o := sim.DefaultOverheads(sim.Charm)
			o.Dynamic = dynamic
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res, err = sim.ExecuteWith(w, m, sim.Charm, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Makespan, "sim-s")
		})
	}
}

// BenchmarkAblation_Valence sweeps the reduction fan-in of the merge-tree
// dataflow (the paper uses 8-way reductions to reduce tree height).
func BenchmarkAblation_Valence(b *testing.B) {
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			// 4096 = 2^12 = 4^6 = 8^4 = 16^3: the same block count for
			// every valence, so only the tree height varies.
			w, err := sim.MergeTreeWorkload(4096, k, 1024)
			if err != nil {
				b.Fatal(err)
			}
			var res sim.Result
			for i := 0; i < b.N; i++ {
				res, err = sim.Execute(w, sim.ShaheenII(512), sim.MPI)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Makespan, "sim-s")
		})
	}
}

// BenchmarkAblation_SpawnCost sweeps the Legion index-launch per-subtask
// spawn cost, the parameter behind the Fig. 2/3 overhead story.
func BenchmarkAblation_SpawnCost(b *testing.B) {
	w := sim.IndependentWorkload(1024, 64, 4<<20)
	m := sim.ShaheenII(1024)
	for _, spawn := range []float64{0, 5e-5, 1.5e-4, 5e-4} {
		b.Run(fmt.Sprintf("spawn=%.0e", spawn), func(b *testing.B) {
			o := sim.DefaultOverheads(sim.LegionIL)
			o.SpawnCost = spawn
			var res sim.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = sim.ExecuteWith(w, m, sim.LegionIL, o)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Makespan, "sim-s")
		})
	}
}

// --- Real-controller micro-benchmarks ---

// BenchmarkControllers_Reduction runs a 64-leaf sum reduction on every real
// controller, measuring framework overhead per dataflow execution.
func BenchmarkControllers_Reduction(b *testing.B) {
	graph, err := babelflow.NewReduction(64, 4)
	if err != nil {
		b.Fatal(err)
	}
	sum := func(in []babelflow.Payload, id babelflow.TaskId) ([]babelflow.Payload, error) {
		var s uint64
		for _, p := range in {
			s += binary.LittleEndian.Uint64(p.Data)
		}
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, s)
		return []babelflow.Payload{babelflow.Buffer(buf)}, nil
	}
	builders := []struct {
		name  string
		build func() babelflow.Controller
	}{
		{"serial", func() babelflow.Controller { return babelflow.NewSerial() }},
		{"mpi", func() babelflow.Controller { return babelflow.NewMPI() }},
		{"charm", func() babelflow.Controller { return babelflow.NewCharm(babelflow.CharmOptions{PEs: 4}) }},
		{"legion-spmd", func() babelflow.Controller { return babelflow.NewLegionSPMD(babelflow.LegionOptions{}) }},
		{"legion-il", func() babelflow.Controller { return babelflow.NewLegionIndexLaunch(babelflow.LegionOptions{}) }},
	}
	taskMap := babelflow.NewModuloMap(4, graph.Size())
	for _, entry := range builders {
		b.Run(entry.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := entry.build()
				if err := c.Initialize(graph, taskMap); err != nil {
					b.Fatal(err)
				}
				for _, cid := range graph.Callbacks() {
					c.RegisterCallback(cid, sum)
				}
				initial := make(map[babelflow.TaskId][]babelflow.Payload)
				for _, id := range graph.LeafIds() {
					buf := make([]byte, 8)
					binary.LittleEndian.PutUint64(buf, uint64(id))
					initial[id] = []babelflow.Payload{babelflow.Buffer(buf)}
				}
				if _, err := c.Run(initial); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegistration_NCC measures the real correlation kernel of the
// registration use case.
func BenchmarkRegistration_NCC(b *testing.B) {
	cfg := register.Config{GridW: 2, GridH: 1, Tile: 32, Overlap: 0.2, Jitter: 2}
	tiles := data.BrainSpecimen(2, 1, 32, 0.2, 2, 3)
	graph, _ := cfg.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := babelflow.NewSerial()
		c.Initialize(graph, nil)
		cfg.Register(c, graph)
		initial, _ := cfg.InitialInputs(graph, tiles)
		if _, err := c.Run(initial); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_OverDecomposition exercises the §I claim that
// over-decomposition helps runtimes with load balancing: the same 1024³
// merge tree decomposed into 1x, 8x and 64x more blocks than cores, on the
// statically-mapped MPI model and the dynamically balanced Charm++ model.
func BenchmarkAblation_OverDecomposition(b *testing.B) {
	const cores = 512
	for _, factor := range []int{1, 8, 64} {
		w, err := sim.MergeTreeWorkload(cores*factor, 8, 1024)
		if err != nil {
			b.Fatal(err)
		}
		m := sim.ShaheenII(cores)
		for _, r := range []sim.RuntimeModel{sim.MPI, sim.Charm} {
			b.Run(fmt.Sprintf("%s/blocks=%dx", r, factor), func(b *testing.B) {
				var res sim.Result
				for i := 0; i < b.N; i++ {
					res, err = sim.Execute(w, m, r)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.Makespan, "sim-s")
			})
		}
	}
}
