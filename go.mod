module github.com/babelflow/babelflow-go

go 1.22
