// Package babelflow is a Go implementation of BabelFlow (Petruzza,
// Treichler, Pascucci, Bremer — "BabelFlow: An Embedded Domain Specific
// Language for Parallel Analysis and Visualization", IPDPS 2018): an
// embedded DSL that describes parallel analysis and visualization
// algorithms as task graphs, executed unmodified on any of several runtime
// controllers.
//
// An algorithm is written once as three ingredients:
//
//  1. Callbacks — one function per task type, operating on Payloads;
//  2. Serialization for the objects exchanged between tasks;
//  3. A TaskGraph describing the dataflow (use a provided prototype such as
//     NewReduction, NewBroadcast, NewBinarySwap, NewKWayMerge,
//     NewNeighbor2D, or implement the interface procedurally).
//
// The graph then runs on the controller matching the host application's
// software stack: NewMPI (static task map, asynchronous point-to-point
// messages, thread pool), NewCharm (chare array with dynamic load
// balancing), NewLegionSPMD / NewLegionIndexLaunch (region-based data
// movement), or NewSerial for debugging — all guaranteeing the same tasks
// execute with the same results.
//
// The mirror of Listing 1 of the paper:
//
//	graph, _ := babelflow.NewReduction(blocks, valence)
//	taskMap := babelflow.NewModuloMap(ranks, graph.Size())
//	c := babelflow.NewMPI(babelflow.WithWorkers(workers))
//	c.Initialize(graph, taskMap)
//	babelflow.RegisterCallbacks(c, graph, map[babelflow.Role]babelflow.Callback{
//		babelflow.RoleLeaf:  volumeRender, // one per block
//		babelflow.RoleInner: composite,    // internal nodes
//		babelflow.RoleRoot:  writeImage,   // root
//	})
//	results, err := c.Run(initialInputs)
//
// Runs can be bounded and made fault tolerant: every controller implements
// RunContext (cancellation and deadlines, with errors testable against
// ErrCancelled), and the MPI controller additionally offers replay-based
// peer-loss recovery via its RunRecover method, governed by a RetryPolicy
// (see WithRetry).
package babelflow

import (
	"io"
	"time"

	"github.com/babelflow/babelflow-go/internal/charm"
	"github.com/babelflow/babelflow-go/internal/core"
	"github.com/babelflow/babelflow-go/internal/dot"
	"github.com/babelflow/babelflow-go/internal/graphs"
	"github.com/babelflow/babelflow-go/internal/journal"
	"github.com/babelflow/babelflow-go/internal/legion"
	"github.com/babelflow/babelflow-go/internal/mpi"
	"github.com/babelflow/babelflow-go/internal/trace"
	"github.com/babelflow/babelflow-go/internal/wire"
)

// Core EDSL types, re-exported from the internal core package.
type (
	// TaskId is the globally unique identifier of a logical task.
	TaskId = core.TaskId
	// CallbackId identifies a task type.
	CallbackId = core.CallbackId
	// ShardId identifies an execution shard (rank / PE / shard).
	ShardId = core.ShardId
	// Task is the logical description of one unit of computation.
	Task = core.Task
	// Payload is the unit of data exchanged between tasks.
	Payload = core.Payload
	// Serializable is implemented by payload objects that can encode
	// themselves for transfer across shard boundaries.
	Serializable = core.Serializable
	// Callback implements one task type.
	Callback = core.Callback
	// TaskGraph is the procedural dataflow description.
	TaskGraph = core.TaskGraph
	// TaskMap assigns tasks to shards.
	TaskMap = core.TaskMap
	// Controller executes a task graph on one runtime.
	Controller = core.Controller
	// Observer receives per-task execution notifications.
	Observer = core.Observer
)

// ExternalInput marks dataflow inputs provided from outside the graph.
const ExternalInput = core.ExternalInput

// Role names the structural position a callback fills in a graph prototype,
// replacing positional registration by index into Callbacks().
type Role = core.Role

// Roles used by the built-in graph prototypes.
const (
	RoleLeaf    = core.RoleLeaf
	RoleInner   = core.RoleInner
	RoleRoot    = core.RoleRoot
	RoleSource  = core.RoleSource
	RoleRelay   = core.RoleRelay
	RoleSink    = core.RoleSink
	RoleFinal   = core.RoleFinal
	RoleExtract = core.RoleExtract
	RoleProcess = core.RoleProcess
)

// RegisterCallbacks registers one callback per named role of the graph —
// the self-documenting replacement for registering by position in
// Callbacks(). Every role the graph defines must be implemented.
func RegisterCallbacks(c core.CallbackRegistrar, g TaskGraph, impls map[Role]Callback) error {
	return core.RegisterCallbacks(c, g, impls)
}

// Typed errors of the execution layer.
var (
	// ErrCancelled marks a RunContext aborted by context cancellation or
	// deadline expiry; test with errors.Is.
	ErrCancelled = core.ErrCancelled
	// ErrRetriesExhausted marks a fault-tolerant run that failed on every
	// attempt its retry policy allowed.
	ErrRetriesExhausted = core.ErrRetriesExhausted
)

// RetryPolicy bounds fault-tolerant re-execution: attempts, backoff and
// per-attempt timeout. The zero value selects sensible defaults.
type RetryPolicy = core.RetryPolicy

// Buffer returns a payload wrapping a binary buffer.
func Buffer(b []byte) Payload { return core.Buffer(b) }

// Object returns a payload wrapping an in-memory object.
func Object(obj any) Payload { return core.Object(obj) }

// Validate checks the structural consistency of a task graph.
func Validate(g TaskGraph) error { return core.Validate(g) }

// Levels partitions a graph into rounds of non-interfering tasks.
func Levels(g TaskGraph) ([][]TaskId, error) { return core.Levels(g) }

// NewModuloMap returns the default round-robin task map of Listing 3.
func NewModuloMap(shardCount, taskCount int) TaskMap {
	return core.NewModuloMap(shardCount, taskCount)
}

// NewBlockMap returns a contiguous-blocks task map.
func NewBlockMap(shardCount, taskCount int) TaskMap {
	return core.NewBlockMap(shardCount, taskCount)
}

// NewGraphMap distributes a graph's (possibly non-contiguous) ids
// round-robin over shards.
func NewGraphMap(shardCount int, g TaskGraph) TaskMap {
	return core.NewGraphMap(shardCount, g)
}

// Prototypical task graphs.

// Reduction is the k-way reduction tree of Listing 2.
type Reduction = graphs.Reduction

// Broadcast is the k-way broadcast tree.
type Broadcast = graphs.Broadcast

// BinarySwap is the binary-swap compositing dataflow.
type BinarySwap = graphs.BinarySwap

// KWayMerge is the k-way merge (all-reduce) dataflow.
type KWayMerge = graphs.KWayMerge

// Neighbor2D is the two-phase halo-exchange dataflow.
type Neighbor2D = graphs.Neighbor2D

// GraphBuilder composes task graphs under id prefixes.
type GraphBuilder = graphs.Builder

// NewReduction returns a k-way reduction over leafs = valence^d leaves.
func NewReduction(leafs, valence int) (*Reduction, error) {
	return graphs.NewReduction(leafs, valence)
}

// NewBroadcast returns a k-way broadcast over leafs = valence^d leaves.
func NewBroadcast(leafs, valence int) (*Broadcast, error) {
	return graphs.NewBroadcast(leafs, valence)
}

// NewBinarySwap returns a binary-swap dataflow over a power-of-two number
// of participants.
func NewBinarySwap(participants int) (*BinarySwap, error) {
	return graphs.NewBinarySwap(participants)
}

// NewKWayMerge returns a k-way merge (reduce + broadcast) dataflow.
func NewKWayMerge(leafs, valence int) (*KWayMerge, error) {
	return graphs.NewKWayMerge(leafs, valence)
}

// NewNeighbor2D returns a 2-D neighbor dataflow over a w x h cell grid.
func NewNeighbor2D(w, h int) (*Neighbor2D, error) {
	return graphs.NewNeighbor2D(w, h)
}

// NewGraphBuilder returns an empty graph-composition builder.
func NewGraphBuilder() *GraphBuilder { return graphs.NewBuilder() }

// SubGraph is a fluent handle on one sub-graph staged in a GraphBuilder;
// obtain one with Builder.Sub and optionally wrap it in a convergence loop
// with its Iterate method.
type SubGraph = graphs.Sub

// Iterative dataflow.

// IterativeGraph is a convergence loop unrolled into a static DAG; it runs
// on every controller and transport tier unchanged. Build one with Iterate
// (or Builder.Sub(...).Iterate when composing), register its synthetic
// decision callback via RegisterDecision, and decode the converged sinks of
// a run with Final.
type IterativeGraph = core.IterativeGraph

// ConvergencePredicate decides, after each iteration of an iterative graph,
// whether the loop has converged; it receives the gated sink payloads keyed
// by body-local task id.
type ConvergencePredicate = core.ConvergencePredicate

// IterOption configures Iterate; see WithMaxIterations, WithGate, WithCarry.
type IterOption = core.IterOption

// Iterate unrolls a convergence loop over the body graph: each iteration
// re-flows the body, a synthetic per-iteration decision task runs pred over
// the gated sink payloads, and the loop stops when pred holds (or at the
// iteration bound). Feedback edges are declared with WithGate/WithCarry and
// must cover every external input of the body.
func Iterate(body TaskGraph, pred ConvergencePredicate, opts ...IterOption) (*IterativeGraph, error) {
	return core.Iterate(body, pred, opts...)
}

// WithMaxIterations bounds the loop at n iterations (default
// core.DefaultMaxIterations); the final iteration drains its state even if
// the predicate never held.
func WithMaxIterations(n int) IterOption { return core.MaxIterations(n) }

// WithGate declares a predicate-visible feedback edge: the sink payload of
// (from, fromSlot) feeds (to, toSlot) in the next iteration, is visible to
// the convergence predicate, and becomes a final sink on convergence.
func WithGate(from TaskId, fromSlot int, to TaskId, toSlot int) IterOption {
	return core.Gate(from, fromSlot, to, toSlot)
}

// WithCarry declares a pass-through feedback edge for loop-invariant state,
// skipping the decision task and the predicate.
func WithCarry(from TaskId, fromSlot int, to TaskId, toSlot int) IterOption {
	return core.Carry(from, fromSlot, to, toSlot)
}

// NewIterativeMap places an unrolled iterative graph onto shards with
// iteration-stable placement: each body task keeps its shard across
// iterations and the decision tasks rotate.
func NewIterativeMap(shardCount int, g *IterativeGraph) TaskMap {
	return core.NewIterativeMap(shardCount, g)
}

// Runtime controllers.

// MPIOption configures the MPI controller at construction; see WithWorkers,
// WithRetry, WithTransport, WithObserver.
type MPIOption = mpi.Option

// WithWorkers sets the MPI controller's global worker budget.
func WithWorkers(n int) MPIOption { return mpi.WithWorkers(n) }

// WithRetry sets the retry policy governing the MPI controller's
// fault-tolerant execution: attempt count, backoff, per-attempt timeout.
func WithRetry(p RetryPolicy) MPIOption { return mpi.WithRetry(p) }

// WithTransport installs a transport factory — the seam fault injection and
// custom interconnects plug into.
func WithTransport(t mpi.TransportFactory) MPIOption { return mpi.WithTransport(t) }

// WithObserver installs the execution observer.
func WithObserver(obs Observer) MPIOption { return mpi.WithObserver(obs) }

// WithInline selects inline (single-threaded, no worker pool) execution.
func WithInline(inline bool) MPIOption { return mpi.WithInline(inline) }

// WithFIFO selects arrival-order dispatch instead of most-critical-first.
func WithFIFO(fifo bool) MPIOption { return mpi.WithFIFO(fifo) }

// WithBlocking switches the fabric to rendezvous sends, modeling blocking
// MPI communication.
func WithBlocking(blocking bool) MPIOption { return mpi.WithBlocking(blocking) }

// WithNoSteal disables work stealing between ranks.
func WithNoSteal(noSteal bool) MPIOption { return mpi.WithNoSteal(noSteal) }

// WithAlwaysSerialize forces every payload through its wire form even for
// rank-local deliveries, proving serialization round-trips are lossless.
func WithAlwaysSerialize(always bool) MPIOption { return mpi.WithAlwaysSerialize(always) }

// SyncPolicy selects when a lineage journal fsyncs: SyncEveryRecord
// (default, crash-durable), SyncOnRotate, SyncNever, or SyncGroupCommit
// (near-SyncNever append cost with a bounded, observable durability lag).
type SyncPolicy = journal.SyncPolicy

// Journal fsync policies; see SyncPolicy.
const (
	SyncEveryRecord = journal.SyncEveryRecord
	SyncOnRotate    = journal.SyncOnRotate
	SyncNever       = journal.SyncNever
	SyncGroupCommit = journal.SyncGroupCommit
)

// WithJournal persists each rank's lineage ledger to an append-only,
// CRC-framed journal under dir (one rank-N subdirectory per rank). A run
// killed at any point resumes from the same directory: journaled tasks
// replay their recorded outputs and only the remaining frontier executes.
func WithJournal(dir string) MPIOption { return mpi.WithJournal(dir) }

// WithJournalSync sets the journal's fsync policy (default SyncEveryRecord).
func WithJournalSync(p SyncPolicy) MPIOption { return mpi.WithJournalSync(p) }

// WithJournalGroupCommit selects SyncGroupCommit with the given commit
// window: the journal fsyncs once per interval, or every records appends,
// whichever comes first. Zero values keep the defaults (2ms, 64 records).
// Appends return immediately; a crash loses at most one window, which
// resume re-executes.
func WithJournalGroupCommit(interval time.Duration, records int) MPIOption {
	return mpi.WithJournalGroupCommit(interval, records)
}

// WireTier selects the transport between rank pairs of a wire mesh:
// TierAuto (default) uses shared-memory rings between co-located ranks and
// TCP across hosts; TierTCP, TierUnix and TierShm force one transport.
type WireTier = wire.Tier

// Wire transport tiers; see WireTier.
const (
	TierAuto = wire.TierAuto
	TierTCP  = wire.TierTCP
	TierUnix = wire.TierUnix
	TierShm  = wire.TierShm
)

// WithWireTier sets the wire transport tier for meshes built from the
// controller's WireOptions template.
func WithWireTier(t WireTier) MPIOption { return mpi.WithWireTier(t) }

// WithHeartbeat tunes the wire transport's peer-liveness probes: interval
// between heartbeats and the silence after which a peer is declared lost.
func WithHeartbeat(interval, timeout time.Duration) MPIOption {
	return mpi.WithHeartbeat(interval, timeout)
}

// CharmOptions configures the Charm++ controller.
type CharmOptions = charm.Options

// LegionOptions configures the Legion controllers.
type LegionOptions = legion.Options

// NewSerial returns the single-threaded reference controller; useful for
// debugging a dataflow, per the paper's over-decomposition property.
func NewSerial() Controller { return core.NewSerial() }

// NewMPI returns the MPI runtime controller (§IV-A), configured by
// functional options applied left to right:
//
//	babelflow.NewMPI(babelflow.WithWorkers(8), babelflow.WithRetry(policy))
func NewMPI(opts ...MPIOption) Controller { return mpi.New(opts...) }

// NewCharm returns the Charm++ runtime controller (§IV-B).
func NewCharm(opt CharmOptions) Controller { return charm.New(opt) }

// NewLegionSPMD returns the Legion SPMD controller (§IV-C).
func NewLegionSPMD(opt LegionOptions) Controller { return legion.NewSPMD(opt) }

// NewLegionIndexLaunch returns the Legion index-launch controller (§IV-C).
func NewLegionIndexLaunch(opt LegionOptions) Controller { return legion.NewIndexLaunch(opt) }

// WriteDot renders a task graph (or a filtered subset) in the Dot graph
// language for debugging, as the paper provides.
func WriteDot(w io.Writer, g TaskGraph, opt DotOptions) error { return dot.Write(w, g, opt) }

// DotOptions controls Dot rendering.
type DotOptions = dot.Options

// In-situ coupling and tracing.

// InSituGroup is the in-situ coupling mode of the MPI controller (§III):
// each simulation rank instantiates only its assigned sub-graph and feeds
// it rank-local data.
type InSituGroup = mpi.Group

// InSituShard is one rank's handle on an in-situ execution.
type InSituShard = mpi.Shard

// NewInSituGroup prepares an in-situ MPI execution over the task map's
// shards; obtain per-rank handles with Shard and call Run concurrently. The
// options follow NewMPI.
func NewInSituGroup(g TaskGraph, m TaskMap, opts ...MPIOption) (*InSituGroup, error) {
	return mpi.NewGroup(g, m, opts...)
}

// TraceRecorder records per-task execution spans; wrap callbacks with
// Wrap and pass the recorder as the controller's Observer.
type TraceRecorder = trace.Recorder

// TraceSpan is one recorded task execution.
type TraceSpan = trace.Span

// TraceSummary aggregates a trace.
type TraceSummary = trace.Summary

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// SummarizeTrace computes wall time, per-shard busy time and the measured
// critical path of a recorded execution.
func SummarizeTrace(g TaskGraph, spans []TraceSpan) (TraceSummary, error) {
	return trace.Summarize(g, spans)
}

// WriteTraceCSV emits spans as CSV for Gantt plotting.
func WriteTraceCSV(w io.Writer, spans []TraceSpan) error { return trace.WriteCSV(w, spans) }
